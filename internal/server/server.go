// Package server is the serving layer over the matching engines:
// cellmatchd's HTTP surface. It turns the one-shot library calls into
// a long-running service that keeps the compiled kernel tables hot,
// shares one fixed worker pool across all requests (no
// goroutine-per-request fan-out), coalesces small payloads into
// batched kernel passes, serves a namespace of per-tenant dictionaries
// that hot-swap independently through internal/registry without
// dropping in-flight traffic, and sheds load with 429 when a
// configured admission budget is exceeded — the paper's sustained
// line-rate NIDS workload, behind HTTP.
//
// Endpoints (each scan/reload/stats path also exists under
// /t/{tenant}/... for named tenants; the bare paths serve the
// "default" tenant, so single-tenant clients never change):
//
//	POST /scan         body = data; query: mode=pool|seq|adhoc,
//	                   workers (adhoc only), chunk, count, filter,
//	                   stride (1 pins this request to the 1-byte loops)
//	POST /scan/stream  chunked upload fed through ScanReader
//	POST /scan/batch   body = one payload, coalesced across requests
//	                   (all tenants share the collector; payloads are
//	                   grouped per captured dictionary) into one
//	                   kernel pass over the shared pool
//	POST /reload       query: path (new artifact),
//	                   format=artifact|dict|regex,
//	                   mode=full|delta (delta patches the live matcher
//	                   incrementally — dict/regex sources only — and
//	                   skips the swap when the pattern set is unchanged)
//	GET  /stats        dictionary shape + request/byte/match counters
//	GET  /metrics      Prometheus text exposition of every counter
//	GET  /healthz      liveness + current generation per tenant
//
// Every request captures its tenant's current registry entry once and
// scans it for the request's whole lifetime (RCU): a concurrent
// /reload never tears a scan, it only changes what later requests see.
// Scan endpoints pass admission control first: when Config.MaxInflight
// or MaxQueuedBytes is set and the budget is exhausted, the request is
// refused with 429 + Retry-After instead of silently degrading every
// admitted request to inline scanning.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"cellmatch/internal/core"
	"cellmatch/internal/parallel"
	"cellmatch/internal/registry"
)

// Config tunes the serving layer. The zero value (plus a Registry or
// Namespace) is production-ready: GOMAXPROCS pool workers, 64 KiB
// chunks, 64 MiB request cap, 64-payload batches with a 2 ms linger,
// and no admission budget (shedding disabled).
type Config struct {
	// Registry supplies the live matcher of a single-tenant server; it
	// becomes the namespace's "default" slot. Exactly one of Registry
	// and Namespace is required.
	Registry *registry.Registry
	// Namespace supplies the full tenant set: one independent registry
	// per tenant. The "default" slot (if present) serves the
	// un-prefixed paths. Populate it fully before New — the server
	// snapshots the tenant set once.
	Namespace *registry.Namespace
	// Workers sizes the shared scan pool. <=0 means GOMAXPROCS.
	Workers int
	// ChunkBytes is the default per-chunk size for pool scans. <=0
	// means the parallel engine's 64 KiB default.
	ChunkBytes int
	// MaxBodyBytes caps /scan and /scan/batch request bodies. <=0
	// means 64 MiB. /scan/stream is exempt (it streams).
	MaxBodyBytes int64
	// BatchMax is the most payloads coalesced into one batch pass.
	// <=0 means 64.
	BatchMax int
	// BatchLinger is how long the batcher waits for more payloads
	// after the first arrives. <=0 means 2 ms.
	BatchLinger time.Duration
	// MaxInflight caps concurrently admitted scan requests across all
	// tenants; excess requests are shed with 429 + Retry-After. <=0
	// means unlimited (no shedding on request count).
	MaxInflight int
	// MaxQueuedBytes caps the summed body size of admitted in-flight
	// scan requests; excess requests are shed with 429. Bodies with a
	// declared Content-Length reserve it up front; chunked bodies of
	// unknown length are metered as they are read and shed mid-stream
	// when their actual bytes overflow the budget. <=0 means unlimited.
	// Set it at least as large as MaxBodyBytes or maximum-size payloads
	// can never be admitted.
	MaxQueuedBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	if c.BatchLinger <= 0 {
		c.BatchLinger = 2 * time.Millisecond
	}
	return c
}

// tenantState is one served tenant: its registry slot plus its
// request/byte/match counters.
type tenantState struct {
	name     string
	reg      *registry.Registry
	counters counters
}

// Server is the HTTP matching service.
type Server struct {
	cfg         Config
	ns          *registry.Namespace
	tenants     map[string]*tenantState
	tenantNames []string // sorted; fixed at New
	pool        *parallel.Pool
	batch       *batcher
	adm         admission
	started     time.Time
}

// New builds a server over the registry or namespace, starting the
// shared worker pool and the batch collector. Call Close to release
// them.
func New(cfg Config) (*Server, error) {
	switch {
	case cfg.Registry == nil && cfg.Namespace == nil:
		return nil, fmt.Errorf("server: Config.Registry or Config.Namespace is required")
	case cfg.Registry != nil && cfg.Namespace != nil:
		return nil, fmt.Errorf("server: Config.Registry and Config.Namespace are mutually exclusive")
	}
	c := cfg.withDefaults()
	ns := c.Namespace
	if ns == nil {
		ns = registry.NewNamespace()
		if err := ns.Set(registry.DefaultTenant, c.Registry); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	names := ns.Tenants()
	if len(names) == 0 {
		return nil, fmt.Errorf("server: namespace has no tenants")
	}
	s := &Server{
		cfg:         c,
		ns:          ns,
		tenants:     make(map[string]*tenantState, len(names)),
		tenantNames: names,
		pool:        parallel.NewPool(c.Workers),
		adm: admission{
			maxInflight:    int64(c.MaxInflight),
			maxQueuedBytes: c.MaxQueuedBytes,
		},
		started: time.Now(),
	}
	for _, name := range names {
		s.tenants[name] = &tenantState{name: name, reg: ns.Get(name)}
	}
	s.batch = newBatcher(c.BatchMax, c.BatchLinger, s.scanBatchGroup)
	return s, nil
}

// Close stops the batch collector and the shared pool. Stop accepting
// HTTP traffic first; requests racing Close fail with 503.
func (s *Server) Close() {
	s.batch.close()
	s.pool.Close()
}

// Pool exposes the shared worker pool (benchmarks, diagnostics).
func (s *Server) Pool() *parallel.Pool { return s.pool }

// Handler returns the routed HTTP handler: the bare paths serving the
// default tenant plus the /t/{tenant}/ aliases, /metrics, /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, prefix := range []string{"", "/t/{tenant}"} {
		mux.HandleFunc("POST "+prefix+"/scan", s.admitted(s.handleScan))
		mux.HandleFunc("POST "+prefix+"/scan/stream", s.admitted(s.handleScanStream))
		mux.HandleFunc("POST "+prefix+"/scan/batch", s.admitted(s.handleScanBatch))
		mux.HandleFunc("POST "+prefix+"/reload", s.handleReload)
		mux.HandleFunc("GET "+prefix+"/stats", s.handleStats)
	}
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// tenant resolves the request's tenant ({tenant} path segment, or the
// default slot on the bare paths), failing the request with 404 when
// the namespace has no such slot.
func (s *Server) tenant(w http.ResponseWriter, r *http.Request) *tenantState {
	name := r.PathValue("tenant")
	if name == "" {
		name = registry.DefaultTenant
	}
	tn := s.tenants[name]
	if tn == nil {
		http.Error(w, fmt.Sprintf("unknown tenant %q", name), http.StatusNotFound)
	}
	return tn
}

// MatchJSON is one reported hit. Start/End are byte offsets into the
// scanned payload ([Start, End) covers the matched text). For literal
// dictionaries served from a buffered payload (/scan, /scan/batch),
// Text is the payload slice [Start, End) itself — under CaseFold that
// is the bytes as they appeared on the wire, not the pattern's
// canonical case. /scan/stream does not retain the payload, so its
// Text carries the canonical pattern instead (offsets remain exact).
// For regex dictionaries a match's length varies per occurrence and
// only the end offset is known, so Start is -1 and Text carries the
// expression source.
type MatchJSON struct {
	Pattern int    `json:"pattern"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	Text    string `json:"text"`
}

// ScanResponse is the reply to /scan, /scan/stream, and /scan/batch.
type ScanResponse struct {
	// Tenant is the namespace slot that served this request.
	Tenant string `json:"tenant"`
	// Generation and Source identify the dictionary that served this
	// request — constant for the request even if a reload lands
	// mid-scan.
	Generation uint64 `json:"generation"`
	Source     string `json:"source"`
	// Engine is the live verifier engine ("stride2", "kernel",
	// "sharded", or "stt"); Filter reports whether the skip-scan
	// front-end ran ahead of it for this request (compiled in and not
	// disabled by the filter=off query knob). Stride is the transition
	// stride that actually served this request: 2 on the stride-2 rung,
	// 1 when the engine is byte-at-a-time or the stride=1 query knob
	// pinned it there, 0 (omitted) on the stt fallback.
	Engine string `json:"engine"`
	Filter bool   `json:"filter,omitempty"`
	Stride int    `json:"stride,omitempty"`
	// Regex reports a regular-expression dictionary: match starts are
	// unknown (-1) and Text fields carry expression sources.
	Regex   bool        `json:"regex,omitempty"`
	Bytes   int         `json:"bytes"`
	Count   int         `json:"count"`
	Matches []MatchJSON `json:"matches,omitempty"`
}

// readBody reads a capped request body, answering 413 only for the
// size cap, 429 when a metered chunked body overflowed the admission
// byte budget mid-read; other read failures (client aborts, resets)
// are 400.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		switch {
		case errors.Is(err, errOverBudget):
			w.Header().Set("Retry-After", "1")
			http.Error(w, "body: "+err.Error(), http.StatusTooManyRequests)
		case errors.As(err, &mbe):
			http.Error(w, "body: "+err.Error(), http.StatusRequestEntityTooLarge)
		default:
			http.Error(w, "body: "+err.Error(), http.StatusBadRequest)
		}
		return nil, false
	}
	return data, true
}

// current captures the tenant's live dictionary entry, or fails the
// request with 503 when none is loaded yet.
func (tn *tenantState) current(w http.ResponseWriter) *registry.Entry {
	e := tn.reg.Current()
	if e == nil {
		http.Error(w, fmt.Sprintf("tenant %q: no dictionary loaded", tn.name), http.StatusServiceUnavailable)
	}
	return e
}

// scanOpts derives per-request parallel options: mode=pool (default)
// scans on the shared pool, mode=seq scans sequentially on the
// compiled engine, mode=adhoc spawns per-request workers (the
// pre-server behavior; `workers` sizes it and is only legal there —
// the pool is fixed-size and seq has no workers, so those modes
// reject the knob with 400 rather than silently ignoring it). `chunk`
// overrides the chunk size in every mode; `filter=off` bypasses the
// skip-scan front-end for this request (output is byte-identical
// either way).
func (s *Server) scanOpts(q map[string][]string) (mode string, opts core.ParallelOptions, err error) {
	get := func(key string) string {
		if v, ok := q[key]; ok && len(v) > 0 {
			return v[0]
		}
		return ""
	}
	mode = get("mode")
	if mode == "" {
		mode = "pool"
	}
	opts.ChunkBytes = s.cfg.ChunkBytes
	if c := get("chunk"); c != "" {
		n, perr := strconv.Atoi(c)
		if perr != nil || n < 0 {
			return "", opts, fmt.Errorf("bad chunk %q", c)
		}
		opts.ChunkBytes = n
	}
	workersSet := false
	if wstr := get("workers"); wstr != "" {
		n, perr := strconv.Atoi(wstr)
		if perr != nil || n < 0 {
			return "", opts, fmt.Errorf("bad workers %q", wstr)
		}
		opts.Workers = n
		workersSet = true
	}
	// "off" bypasses per request; "on"/"auto" mean the matcher's
	// compiled default ("on" cannot conjure a front-end the dictionary
	// declined at compile time).
	fmode, ferr := core.ParseFilterMode(get("filter"))
	if ferr != nil {
		return "", opts, ferr
	}
	opts.DisableFilter = fmode == core.FilterOff
	// stride=1 pins this request onto the 1-byte kernel loops;
	// "2"/"auto" mean the compiled default (like filter=on, a request
	// cannot conjure pair tables the compile declined).
	stride, serr := core.ParseStride(get("stride"))
	if serr != nil {
		return "", opts, serr
	}
	opts.DisableStride2 = stride == 1
	switch mode {
	case "pool":
		opts.Pool = s.pool
	case "seq", "adhoc":
	default:
		return "", opts, fmt.Errorf("bad mode %q (want pool, seq, or adhoc)", mode)
	}
	if workersSet && mode != "adhoc" {
		return "", opts, fmt.Errorf("workers only applies to mode=adhoc (mode=%s runs on %s)",
			mode, map[string]string{"pool": "the fixed shared pool", "seq": "one goroutine"}[mode])
	}
	return mode, opts, nil
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	tn := s.tenant(w, r)
	if tn == nil {
		return
	}
	e := tn.current(w)
	if e == nil {
		return
	}
	mode, opts, err := s.scanOpts(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var matches []core.Match
	if mode == "seq" {
		switch {
		case opts.DisableFilter && opts.DisableStride2:
			matches, err = e.Matcher.FindAllUnfilteredStride1(data)
		case opts.DisableFilter:
			matches, err = e.Matcher.FindAllUnfiltered(data)
		case opts.DisableStride2:
			matches, err = e.Matcher.FindAllStride1(data)
		default:
			matches, err = e.Matcher.FindAll(data)
		}
	} else {
		matches, err = e.Matcher.FindAllParallel(data, opts)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	tn.counters.scan(len(data), len(matches))
	s.writeScanResponse(w, r, tn, e, data, len(data), matches, !opts.DisableFilter, opts.DisableStride2)
}

func (s *Server) handleScanStream(w http.ResponseWriter, r *http.Request) {
	tn := s.tenant(w, r)
	if tn == nil {
		return
	}
	e := tn.current(w)
	if e == nil {
		return
	}
	_, opts, err := s.scanOpts(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cr := &countingReader{r: r.Body}
	matches, err := e.Matcher.ScanReader(cr, opts)
	if err != nil {
		// A failure reading the client's body (abort, reset, malformed
		// chunking) is the client's fault; a mid-stream admission
		// overflow is load shedding (429, like an up-front refusal);
		// anything else surfaced by the engine is ours — match /scan's
		// 400-vs-500 split instead of blaming the client for internal
		// scan errors.
		status := streamScanStatus(cr)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		http.Error(w, err.Error(), status)
		return
	}
	tn.counters.scan(cr.n, len(matches))
	s.writeScanResponse(w, r, tn, e, nil, cr.n, matches, !opts.DisableFilter, opts.DisableStride2)
}

// streamScanStatus classifies a ScanReader failure: 429 when the
// metered body overflowed the admission byte budget, 400 when the
// streamed body itself failed to read, 500 for engine-internal errors.
func streamScanStatus(cr *countingReader) int {
	if errors.Is(cr.err, errOverBudget) {
		return http.StatusTooManyRequests
	}
	if cr.err != nil {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Server) handleScanBatch(w http.ResponseWriter, r *http.Request) {
	tn := s.tenant(w, r)
	if tn == nil {
		return
	}
	e := tn.current(w)
	if e == nil {
		return
	}
	fmode, err := core.ParseFilterMode(r.URL.Query().Get("filter"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	stride, err := core.ParseStride(r.URL.Query().Get("stride"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	disableFilter := fmode == core.FilterOff && e.Matcher.FilterActive()
	disableStride2 := stride == 1 && e.Matcher.Stride() == 2
	var matches []core.Match
	if disableFilter || disableStride2 {
		// A coalesced pass is shared across requests and cannot honor a
		// per-request bypass (filter=off or stride=1): scan this payload
		// alone on the pool, the same knob semantics as /scan. When the
		// matcher has nothing to bypass the knob is a no-op and
		// coalescing proceeds.
		matches, err = e.Matcher.FindAllParallel(data, core.ParallelOptions{
			ChunkBytes: s.cfg.ChunkBytes, Pool: s.pool,
			DisableFilter: disableFilter, DisableStride2: disableStride2,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		matches, err = s.batch.submit(e, data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	tn.counters.scan(len(data), len(matches))
	s.writeScanResponse(w, r, tn, e, data, len(data), matches, fmode != core.FilterOff, stride == 1)
}

// scanBatchGroup is the batcher's scan callback: one coalesced kernel
// pass over every payload in the group, on the shared pool. Groups are
// keyed by captured registry entry, so payloads from different tenants
// (or different generations of one tenant) never share a pass.
func (s *Server) scanBatchGroup(e *registry.Entry, payloads [][]byte) ([][]core.Match, error) {
	return e.Matcher.FindAllBatch(payloads, core.ParallelOptions{
		ChunkBytes: s.cfg.ChunkBytes,
		Pool:       s.pool,
	})
}

// writeScanResponse renders the match list. data is the scanned
// payload when the endpoint buffered it (/scan, /scan/batch) so
// literal-dictionary Text fields carry the actual matched bytes; nil
// for /scan/stream, which falls back to the canonical pattern.
func (s *Server) writeScanResponse(w http.ResponseWriter, r *http.Request, tn *tenantState, e *registry.Entry, data []byte, n int, matches []core.Match, filtered bool, stride1 bool) {
	regex := e.Matcher.IsRegex()
	stride := e.Matcher.Stride()
	if stride1 && stride == 2 {
		stride = 1
	}
	resp := ScanResponse{
		Tenant:     tn.name,
		Generation: e.Generation,
		Source:     e.Source,
		Engine:     e.Matcher.EngineName(),
		Filter:     filtered && e.Matcher.FilterActive(),
		Stride:     stride,
		Regex:      regex,
		Bytes:      n,
		Count:      len(matches),
	}
	if r.URL.Query().Get("count") != "1" {
		resp.Matches = make([]MatchJSON, len(matches))
		for i, m := range matches {
			p := e.Matcher.Pattern(m.Pattern)
			start := m.End - len(p)
			text := string(p)
			if regex {
				start = -1 // match length varies; only the end is known
			} else if data != nil {
				text = string(data[start:m.End])
			}
			resp.Matches[i] = MatchJSON{
				Pattern: m.Pattern,
				Start:   start,
				End:     m.End,
				Text:    text,
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ReloadResponse is the reply to /reload.
type ReloadResponse struct {
	Tenant     string `json:"tenant"`
	Generation uint64 `json:"generation"`
	Source     string `json:"source"`
	Patterns   int    `json:"patterns"`
	States     int    `json:"states"`
	// Engine is the new dictionary's live scan engine ("stride2",
	// "kernel", "compressed", "sharded", or "stt"); Shards its shard
	// count (0 unless sharded); Stride its transition stride (2 on the
	// stride-2 rung, 1 byte-at-a-time, 0 on stt) — the immediate signal
	// that a swapped-in dictionary landed in (or fell out of) the
	// peak-performance tiers. Filter reports whether the skip-scan
	// front-end came up ahead of the engine.
	Engine string `json:"engine"`
	Shards int    `json:"shards,omitempty"`
	Stride int    `json:"stride,omitempty"`
	Filter bool   `json:"filter,omitempty"`
	// Regex reports that the swapped-in dictionary is a set of regular
	// expressions (format=regex, or a regex artifact).
	Regex bool `json:"regex,omitempty"`
	// Outcome classifies what the reload did: "rebuilt" (full cold
	// compile), "patched" (incremental recompile reused compiled units
	// of the previous matcher), or "unchanged" (the source's pattern
	// set is identical to the live one — no swap was published and
	// Generation is the still-current generation).
	Outcome string `json:"outcome"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	tn := s.tenant(w, r)
	if tn == nil {
		return
	}
	q := r.URL.Query()
	mode := q.Get("mode")
	if mode != "" && mode != "full" && mode != "delta" {
		http.Error(w, fmt.Sprintf("bad mode %q (want full or delta)", mode), http.StatusBadRequest)
		return
	}
	var (
		e       *registry.Entry
		outcome registry.DeltaOutcome
		err     error
	)
	if path := q.Get("path"); path != "" {
		opts := core.Options{CaseFold: q.Get("casefold") == "1"}
		format := q.Get("format")
		if mode == "delta" {
			// Delta retarget: the loader sees the live matcher and
			// patches it. Artifacts are pre-compiled — there is nothing
			// to patch against — so only source formats qualify.
			var load registry.DeltaLoader
			switch format {
			case "dict":
				load = registry.DictDeltaLoader(path, opts)
			case "regex":
				load = registry.RegexDeltaLoader(path, opts)
			case "", "artifact":
				http.Error(w, "mode=delta requires format=dict or format=regex (artifacts are pre-compiled)", http.StatusUnprocessableEntity)
				return
			default:
				http.Error(w, fmt.Sprintf("bad format %q (want dict or regex)", format), http.StatusBadRequest)
				return
			}
			e, outcome, err = tn.reg.RetargetDelta(path, load)
		} else {
			var load registry.Loader
			switch format {
			case "", "artifact":
				load = registry.ArtifactLoader(path)
			case "dict":
				load = registry.DictLoader(path, opts)
			case "regex":
				load = registry.RegexLoader(path, opts)
			default:
				http.Error(w, fmt.Sprintf("bad format %q (want artifact, dict, or regex)", format), http.StatusBadRequest)
				return
			}
			e, err = tn.reg.Retarget(path, load)
		}
	} else if mode == "full" {
		// Forced cold rebuild: bypass the installed loader's patching
		// and unchanged short-circuit, so a reorder-only rewrite still
		// publishes a new generation with pattern ids in file order.
		e, err = tn.reg.ReloadFull()
		outcome = registry.Rebuilt
	} else {
		// No mode (or the default): re-run the installed loader. A
		// daemon started with a delta-aware loader patches or
		// short-circuits as warranted; the outcome reports what
		// actually happened.
		e, outcome, err = tn.reg.ReloadOutcome()
	}
	if err != nil {
		// The previous dictionary is still live; the reload just failed.
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	st := e.Matcher.Stats()
	writeJSON(w, http.StatusOK, ReloadResponse{
		Tenant:     tn.name,
		Generation: e.Generation,
		Source:     e.Source,
		Patterns:   st.Patterns,
		States:     st.States,
		Engine:     st.Engine,
		Shards:     st.Shards,
		Stride:     st.Stride,
		Filter:     st.FilterEnabled,
		Regex:      st.Regex,
		Outcome:    outcome.String(),
	})
}

// StatsResponse is the reply to /stats: the resolved tenant's
// dictionary and counters plus the service-wide pool, batch, and
// admission state.
type StatsResponse struct {
	Tenant        string   `json:"tenant"`
	Tenants       []string `json:"tenants"`
	Generation    uint64   `json:"generation"`
	Source        string   `json:"source"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	PoolWorkers   int      `json:"pool_workers"`
	Requests      uint64   `json:"requests"`
	BytesScanned  uint64   `json:"bytes_scanned"`
	MatchesFound  uint64   `json:"matches_found"`
	Batches       uint64   `json:"batches"`
	BatchPayloads uint64   `json:"batch_payloads"`
	ReloadsOK     uint64   `json:"reloads_ok"`
	ReloadsFailed uint64   `json:"reloads_failed"`
	// ReloadsPatched counts reloads satisfied by incremental
	// recompilation (compiled units of the previous matcher reused);
	// ReloadsUnchanged counts reloads short-circuited because the
	// source's pattern set was identical to the live dictionary's (no
	// swap published, generation unchanged).
	ReloadsPatched   uint64     `json:"reloads_patched"`
	ReloadsUnchanged uint64     `json:"reloads_unchanged"`
	Inflight         int64      `json:"inflight_requests"`
	InflightPeak     int64      `json:"inflight_requests_peak"`
	Shed             uint64     `json:"requests_shed"`
	Dictionary       core.Stats `json:"dictionary"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	tn := s.tenant(w, r)
	if tn == nil {
		return
	}
	e := tn.current(w)
	if e == nil {
		return
	}
	ok, failed := tn.reg.Reloads()
	patched, unchanged := tn.reg.DeltaReloads()
	batches, payloads := s.batch.stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Tenant:           tn.name,
		Tenants:          s.tenantNames,
		Generation:       e.Generation,
		Source:           e.Source,
		UptimeSeconds:    time.Since(s.started).Seconds(),
		PoolWorkers:      s.pool.Workers(),
		Requests:         tn.counters.requests.Load(),
		BytesScanned:     tn.counters.bytes.Load(),
		MatchesFound:     tn.counters.matches.Load(),
		Batches:          batches,
		BatchPayloads:    payloads,
		ReloadsOK:        ok,
		ReloadsFailed:    failed,
		ReloadsPatched:   patched,
		ReloadsUnchanged: unchanged,
		Inflight:         s.adm.inflight.Load(),
		InflightPeak:     s.adm.peak.Load(),
		Shed:             s.adm.shed.Load(),
		Dictionary:       e.Matcher.Stats(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	generations := make(map[string]uint64, len(s.tenantNames))
	loaded := 0
	for _, name := range s.tenantNames {
		var gen uint64
		if e := s.tenants[name].reg.Current(); e != nil {
			gen = e.Generation
			loaded++
		}
		generations[name] = gen
	}
	if loaded == 0 {
		http.Error(w, "no dictionary loaded", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":          true,
		"generation":  generations[registry.DefaultTenant],
		"generations": generations,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // client gone: nothing useful to do
}

// countingReader tracks bytes consumed from a streamed body, and
// remembers whether the stream itself ever failed (the 400-vs-500
// signal for /scan/stream).
type countingReader struct {
	r   io.Reader
	n   int
	err error // first non-EOF read error
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	if err != nil && err != io.EOF && c.err == nil {
		c.err = err
	}
	return n, err
}
