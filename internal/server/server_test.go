package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellmatch/internal/core"
	"cellmatch/internal/registry"
	"cellmatch/internal/workload"
)

// newTestServer serves a compiled dictionary over httptest.
func newTestServer(t *testing.T, patterns []string, cfg Config) (*httptest.Server, *registry.Registry, *core.Matcher) {
	t.Helper()
	m, err := core.CompileStrings(patterns, core.Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.NewWithMatcher(m, "inline")
	cfg.Registry = reg
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, reg, m
}

func postScan(t *testing.T, url string, body []byte) ScanResponse {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d: %s", url, resp.StatusCode, raw)
	}
	var sr ScanResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("bad JSON from %s: %v: %s", url, err, raw)
	}
	return sr
}

// wantMatches converts library matches into the wire shape of the
// buffered endpoints (/scan, /scan/batch): Text is the payload slice.
func wantMatches(m *core.Matcher, data []byte, hits []core.Match) []MatchJSON {
	out := make([]MatchJSON, len(hits))
	for i, h := range hits {
		p := m.Pattern(h.Pattern)
		start := h.End - len(p)
		out[i] = MatchJSON{Pattern: h.Pattern, Start: start, End: h.End, Text: string(data[start:h.End])}
	}
	return out
}

// wantStreamMatches is the /scan/stream wire shape: the payload is not
// buffered there, so Text carries the canonical pattern.
func wantStreamMatches(m *core.Matcher, hits []core.Match) []MatchJSON {
	out := make([]MatchJSON, len(hits))
	for i, h := range hits {
		p := m.Pattern(h.Pattern)
		out[i] = MatchJSON{Pattern: h.Pattern, Start: h.End - len(p), End: h.End, Text: string(p)}
	}
	return out
}

func testTraffic(t *testing.T, n int, seed int64) []byte {
	t.Helper()
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: n, MatchEvery: 4 << 10, Dictionary: workload.SignatureDictionary(), Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func sigPatterns() []string {
	var out []string
	for _, p := range workload.SignatureDictionary() {
		out = append(out, string(p))
	}
	return out
}

// Hot-swapping to a dictionary running the sharded tier must surface
// the tier through /reload and /stats, and every scan mode must serve
// it with exactly FindAll's matches.
func TestShardedDictionaryServing(t *testing.T) {
	ts, _, _ := newTestServer(t, []string{"placeholder"}, Config{})

	// Build a sharded artifact: a budget far under the dense footprint.
	pats := []string{"aaaaaaaa", "bbbbbbbb", "cccccccc", "dddddddd", "eeeeeeee"}
	m, err := core.CompileStrings(pats, core.Options{
		Engine: core.EngineOptions{MaxTableBytes: 1 << 10, Compressed: core.CompressedOff},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.EngineName() != "sharded" {
		t.Fatalf("fixture engine = %q, want sharded", m.EngineName())
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sharded.cms")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/reload?path="+path+"&format=artifact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr ReloadResponse
	err = json.NewDecoder(resp.Body).Decode(&rr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Engine != "sharded" || rr.Shards < 2 {
		t.Fatalf("/reload reported %+v, want sharded with >= 2 shards", rr)
	}

	data := []byte(strings.Repeat("xxaaaaaaaXooccccccccoo", 50) + "eeeeeeee")
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture traffic has no matches")
	}
	for _, mode := range []string{"pool", "seq", "adhoc&workers=3"} {
		sr := postScan(t, ts.URL+"/scan?mode="+mode, data)
		if sr.Engine != "sharded" || sr.Count != len(want) {
			t.Fatalf("mode %s: engine %q count %d, want sharded/%d", mode, sr.Engine, sr.Count, len(want))
		}
		if !reflect.DeepEqual(sr.Matches, wantMatches(m, data, want)) {
			t.Fatalf("mode %s: matches diverge", mode)
		}
	}

	// /stats carries the shard shape for dashboards.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Dictionary.Engine != "sharded" || st.Dictionary.Shards < 2 || st.Dictionary.MaxShardTableBytes <= 0 {
		t.Fatalf("/stats dictionary = %+v, want sharded shape", st.Dictionary)
	}
}

// Every scan mode (shared pool, sequential, ad-hoc workers, odd chunk
// sizes) must return exactly FindAll's matches.
func TestScanModesEquivalence(t *testing.T) {
	ts, _, m := newTestServer(t, sigPatterns(), Config{})
	data := testTraffic(t, 256<<10, 41)
	ref, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	want := wantMatches(m, data, ref)
	if len(want) == 0 {
		t.Fatal("test traffic has no hits; test is vacuous")
	}
	for _, query := range []string{
		"", "?mode=pool", "?mode=seq", "?mode=adhoc&workers=3",
		"?mode=pool&chunk=1024", "?mode=adhoc&workers=2&chunk=333",
	} {
		sr := postScan(t, ts.URL+"/scan"+query, data)
		if sr.Bytes != len(data) || sr.Count != len(want) {
			t.Fatalf("%q: bytes=%d count=%d, want %d/%d", query, sr.Bytes, sr.Count, len(data), len(want))
		}
		if !reflect.DeepEqual(sr.Matches, want) {
			t.Fatalf("%q: matches diverged from FindAll", query)
		}
	}
	// count=1 omits the match list but keeps the count.
	sr := postScan(t, ts.URL+"/scan?count=1", data)
	if sr.Count != len(want) || sr.Matches != nil {
		t.Fatalf("count=1: count=%d matches=%v", sr.Count, sr.Matches)
	}
}

// The /scan/stream satellite: a chunked upload cut at adversarial
// split points must equal FindAll over the whole payload.
func TestScanStreamSplitEquivalence(t *testing.T) {
	ts, _, m := newTestServer(t, sigPatterns(), Config{})
	data := testTraffic(t, 300<<10, 43)
	ref, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	want := wantStreamMatches(m, ref)
	if len(want) == 0 {
		t.Fatal("test traffic has no hits; test is vacuous")
	}
	// Prime-sized writes guarantee cuts land mid-pattern somewhere.
	for _, step := range []int{1 << 10, 4093, 65537, len(data)} {
		pr, pw := io.Pipe()
		go func(step int) {
			for off := 0; off < len(data); off += step {
				end := off + step
				if end > len(data) {
					end = len(data)
				}
				if _, err := pw.Write(data[off:end]); err != nil {
					return
				}
			}
			pw.Close()
		}(step)
		resp, err := http.Post(ts.URL+"/scan/stream?chunk=8192", "application/octet-stream", pr)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d: %d: %s", step, resp.StatusCode, raw)
		}
		var sr ScanResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Bytes != len(data) {
			t.Fatalf("step %d: consumed %d of %d bytes", step, sr.Bytes, len(data))
		}
		if !reflect.DeepEqual(sr.Matches, want) {
			t.Fatalf("step %d: stream scan diverged from FindAll (%d vs %d)", step, len(sr.Matches), len(want))
		}
	}
}

// The acceptance race test: concurrent /scan traffic while /reload
// alternates two dictionaries. Zero failed requests, and every
// response must be internally consistent — the matches always belong
// to the dictionary named by the response's source/generation, never a
// mix (a torn matcher).
func TestConcurrentScanReloadNoTornMatcher(t *testing.T) {
	dir := t.TempDir()
	mkArtifact := func(name string, pats []string) string {
		m, err := core.CompileStrings(pats, core.Options{CaseFold: true})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Save(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	pathA := mkArtifact("a.cms", []string{"aardvark"})
	pathB := mkArtifact("b.cms", []string{"bumblebee"})

	ts, _, _ := newTestServer(t, []string{"aardvark"}, Config{})
	probe := []byte("an AARDVARK met a bumblebee; the aardvark left")
	// Per dictionary: the exact match set the probe must yield.
	wantByText := map[string]int{"aardvark": 2, "bumblebee": 1}

	var scans, reloads atomic.Uint64
	stopc := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 64)

	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(mode string) {
			defer wg.Done()
			for {
				select {
				case <-stopc:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/scan?mode="+mode, "application/octet-stream", bytes.NewReader(probe))
				if err != nil {
					errc <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("scan failed: %d: %s", resp.StatusCode, raw)
					return
				}
				var sr ScanResponse
				if err := json.Unmarshal(raw, &sr); err != nil {
					errc <- err
					return
				}
				// Which dictionary does the response claim served it?
				var wantText string
				switch {
				case sr.Source == "inline" || strings.HasSuffix(sr.Source, "a.cms"):
					wantText = "aardvark"
				case strings.HasSuffix(sr.Source, "b.cms"):
					wantText = "bumblebee"
				default:
					errc <- fmt.Errorf("unknown source %q", sr.Source)
					return
				}
				if sr.Count != wantByText[wantText] {
					errc <- fmt.Errorf("torn response: source=%s gen=%d count=%d: %s", sr.Source, sr.Generation, sr.Count, raw)
					return
				}
				for _, hit := range sr.Matches {
					// Text is the payload slice under CaseFold, so compare
					// case-insensitively ("AARDVARK" is the aardvark hit).
					if !strings.EqualFold(hit.Text, wantText) {
						errc <- fmt.Errorf("torn response: source=%s reported %q", sr.Source, hit.Text)
						return
					}
					if got := string(probe[hit.Start:hit.End]); !strings.EqualFold(got, wantText) {
						errc <- fmt.Errorf("offsets off: [%d,%d) = %q", hit.Start, hit.End, got)
						return
					}
				}
				scans.Add(1)
			}
		}([]string{"pool", "seq", "adhoc"}[c%3])
	}

	// Reloader: alternate A and B as fast as the server allows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		paths := []string{pathA, pathB}
		for i := 0; ; i++ {
			select {
			case <-stopc:
				return
			default:
			}
			resp, err := http.Post(ts.URL+"/reload?path="+paths[i%2], "", nil)
			if err != nil {
				errc <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("reload failed: %d", resp.StatusCode)
				return
			}
			reloads.Add(1)
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stopc)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if scans.Load() == 0 || reloads.Load() < 2 {
		t.Fatalf("race window too small: %d scans, %d reloads", scans.Load(), reloads.Load())
	}
	t.Logf("%d scans raced %d reloads with zero failures", scans.Load(), reloads.Load())
}

// /scan/batch must coalesce concurrent payloads and still return each
// request its own payload's exact matches.
func TestBatchCoalescing(t *testing.T) {
	ts, _, m := newTestServer(t, sigPatterns(), Config{BatchLinger: 5 * time.Millisecond})
	const clients = 24
	payloads := make([][]byte, clients)
	for i := range payloads {
		payloads[i] = testTraffic(t, 2<<10+i*137, int64(500+i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ref, err := m.FindAll(payloads[i])
			if err != nil {
				errs <- err
				return
			}
			want := wantMatches(m, payloads[i], ref)
			resp, err := http.Post(ts.URL+"/scan/batch", "application/octet-stream", bytes.NewReader(payloads[i]))
			if err != nil {
				errs <- err
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: %d: %s", i, resp.StatusCode, raw)
				return
			}
			var sr ScanResponse
			if err := json.Unmarshal(raw, &sr); err != nil {
				errs <- err
				return
			}
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(sr.Matches, want) {
				errs <- fmt.Errorf("client %d: batch scan diverged (%d vs %d matches)", i, len(sr.Matches), len(want))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The batcher must have actually coalesced: fewer passes than
	// payloads (with 24 concurrent clients and a 5ms linger, some must
	// share a batch).
	var st StatsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.BatchPayloads != clients {
		t.Fatalf("batched %d payloads, want %d", st.BatchPayloads, clients)
	}
	if st.Batches == 0 || st.Batches > clients {
		t.Fatalf("implausible batch count %d", st.Batches)
	}
	t.Logf("%d payloads coalesced into %d batches", st.BatchPayloads, st.Batches)
}

// TestEngineLadderServing drives one dictionary onto every rung of
// the selection ladder — dense-fit, compressed-fit, shard-only,
// stt-only — crossed with the stride and filter knobs, and checks
// that the served /stats dictionary block agrees exactly with the
// matcher's own Stats()/EngineName view: the serving layer must never
// report a different rung than the engine actually scanning.
func TestEngineLadderServing(t *testing.T) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 900, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Budget boundaries straddled by the 900-state dictionary: its
	// dense table fits 8 MiB, only its compressed rows fit 48 KiB,
	// neither fits 48 KiB with compression off (shards do), and
	// DisableKernel forces stt.
	cases := []struct {
		name string
		eng  core.EngineOptions
		want string
	}{
		{"dense-fit", core.EngineOptions{Stride: 1}, "kernel"},
		{"compressed-fit", core.EngineOptions{MaxTableBytes: 48 << 10}, "compressed"},
		{"shard-only", core.EngineOptions{
			MaxTableBytes: 48 << 10, MaxShards: 8, Compressed: core.CompressedOff,
		}, "sharded"},
		{"stt-only", core.EngineOptions{DisableKernel: true}, "stt"},
	}
	for _, tc := range cases {
		for _, stride := range []int{0, 1} {
			for _, fm := range []core.FilterMode{core.FilterAuto, core.FilterOff} {
				eng := tc.eng
				if eng.Stride == 0 {
					eng.Stride = stride
				}
				eng.Filter = fm
				m, err := core.Compile(pats, core.Options{CaseFold: true, Engine: eng})
				if err != nil {
					t.Fatalf("%s stride=%d filter=%v: %v", tc.name, stride, fm, err)
				}
				got := m.Stats().Engine
				// Stride auto may promote a dense-fit dictionary to the
				// stride-2 rung; every other expectation is exact.
				if got != tc.want && !(tc.want == "kernel" && got == "stride2") {
					t.Fatalf("%s stride=%d filter=%v: engine %q, want %q",
						tc.name, stride, fm, got, tc.want)
				}
				if got != m.EngineName() {
					t.Fatalf("%s: Stats().Engine %q != EngineName() %q", tc.name, got, m.EngineName())
				}
				s, err := New(Config{Registry: registry.NewWithMatcher(m, "inline-"+tc.name)})
				if err != nil {
					t.Fatal(err)
				}
				ts := httptest.NewServer(s.Handler())
				st := getStats(t, ts.URL+"/stats")
				ts.Close()
				s.Close()
				if st.Dictionary != m.Stats() {
					t.Fatalf("%s stride=%d filter=%v: /stats dictionary %+v != matcher stats %+v",
						tc.name, stride, fm, st.Dictionary, m.Stats())
				}
			}
		}
	}
}

func TestStatsCounters(t *testing.T) {
	ts, _, _ := newTestServer(t, []string{"needle"}, Config{Workers: 3})
	payload := []byte("a needle in a haystack with another needle")
	for i := 0; i < 4; i++ {
		postScan(t, ts.URL+"/scan", payload)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 4 {
		t.Fatalf("requests=%d, want 4", st.Requests)
	}
	if st.BytesScanned != uint64(4*len(payload)) {
		t.Fatalf("bytes=%d, want %d", st.BytesScanned, 4*len(payload))
	}
	if st.MatchesFound != 8 {
		t.Fatalf("matches=%d, want 8", st.MatchesFound)
	}
	if st.PoolWorkers != 3 || st.Generation != 1 || st.Dictionary.Patterns != 1 {
		t.Fatalf("bad stats: %+v", st)
	}
	if st.Dictionary.Engine != "stride2" {
		t.Fatalf("engine=%s, want stride2 (default stride auto)", st.Dictionary.Engine)
	}
	if st.Dictionary.Stride != 2 || st.Dictionary.PairTableBytes <= 0 {
		t.Fatalf("stride-2 stats missing from /stats: %+v", st.Dictionary)
	}
}

// A failed reload must keep the old dictionary serving and report the
// failure in /stats.
func TestReloadFailureKeepsServing(t *testing.T) {
	ts, _, _ := newTestServer(t, []string{"needle"}, Config{})
	resp, err := http.Post(ts.URL+"/reload?path=/definitely/not/there.cms", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad reload: %d, want 422", resp.StatusCode)
	}
	sr := postScan(t, ts.URL+"/scan", []byte("needle"))
	if sr.Count != 1 || sr.Generation != 1 {
		t.Fatalf("old dictionary not serving: %+v", sr)
	}
}

func TestRequestValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, []string{"needle"}, Config{MaxBodyBytes: 1 << 10})
	check := func(method, path string, body io.Reader, want int) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s %s: %d, want %d", method, path, resp.StatusCode, want)
		}
	}
	check("GET", "/scan", nil, http.StatusMethodNotAllowed)
	check("POST", "/stats", nil, http.StatusMethodNotAllowed)
	check("POST", "/scan?mode=warp", strings.NewReader("x"), http.StatusBadRequest)
	check("POST", "/scan?workers=-2", strings.NewReader("x"), http.StatusBadRequest)
	check("POST", "/scan?chunk=banana", strings.NewReader("x"), http.StatusBadRequest)
	check("POST", "/scan?filter=maybe", strings.NewReader("x"), http.StatusBadRequest)
	check("POST", "/scan/batch?filter=maybe", strings.NewReader("x"), http.StatusBadRequest)
	check("POST", "/scan", bytes.NewReader(make([]byte, 2<<10)), http.StatusRequestEntityTooLarge)
	check("POST", "/scan/batch", bytes.NewReader(make([]byte, 2<<10)), http.StatusRequestEntityTooLarge)
	check("POST", "/reload?path=x&format=hologram", nil, http.StatusBadRequest)
}

// New requires a registry.
func TestNewRequiresRegistry(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil registry accepted")
	}
}

// TestFilterKnobEquivalence: the per-request filter=off knob must
// bypass the skip-scan front-end (reported by ScanResponse.Filter) and
// still return exactly the same matches, in every scan mode.
func TestFilterKnobEquivalence(t *testing.T) {
	ts, _, m := newTestServer(t, sigPatterns(), Config{Workers: 2})
	if !m.FilterActive() {
		t.Fatal("signature dictionary did not auto-enable the filter")
	}
	payload := testTraffic(t, 64<<10, 3)
	var ref ScanResponse
	for i, q := range []string{"", "?filter=on", "?filter=auto", "?filter=off",
		"?mode=seq", "?mode=seq&filter=off", "?mode=adhoc&workers=3&filter=off"} {
		sr := postScan(t, ts.URL+"/scan"+q, payload)
		if batch := postScan(t, ts.URL+"/scan/batch"+q, payload); batch.Count != sr.Count ||
			batch.Filter != !strings.Contains(q, "filter=off") {
			t.Fatalf("/scan/batch%s: count=%d filter=%v, want count=%d", q, batch.Count, batch.Filter, sr.Count)
		}
		wantFilter := !strings.Contains(q, "filter=off")
		if sr.Filter != wantFilter {
			t.Fatalf("%q: Filter=%v, want %v", q, sr.Filter, wantFilter)
		}
		if i == 0 {
			ref = sr
			if ref.Count == 0 {
				t.Fatal("traffic has no matches")
			}
			continue
		}
		if sr.Count != ref.Count || !reflect.DeepEqual(sr.Matches, ref.Matches) {
			t.Fatalf("%q: %d matches, want %d (filter knob changed the output)", q, sr.Count, ref.Count)
		}
	}
	// /stats surfaces the front-end and its skip counter.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Dictionary.FilterEnabled || st.Dictionary.FilterWindow == 0 {
		t.Fatalf("stats missing filter fields: %+v", st.Dictionary)
	}
	if st.Dictionary.WindowsSkipped == 0 {
		t.Fatalf("no windows skipped after %d bytes of traffic", st.BytesScanned)
	}
	if st.Dictionary.MinPatternLen == 0 {
		t.Fatalf("MinPatternLen not reported: %+v", st.Dictionary)
	}
}

// TestStatsScanRace is the -race regression test for the Stats
// counters: /scan (advancing WindowsSkipped and the service counters)
// and /stats (reading them) hammered concurrently must be data-race
// free — the counters are atomics, not plain ints.
func TestStatsScanRace(t *testing.T) {
	ts, _, m := newTestServer(t, sigPatterns(), Config{Workers: 2})
	if !m.FilterActive() {
		t.Fatal("filter not active; the race under test needs the skip counter moving")
	}
	payload := testTraffic(t, 32<<10, 5)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			q := "?count=1"
			if i%2 == 1 {
				q = "?count=1&mode=seq"
			}
			for j := 0; j < 8; j++ {
				resp, err := http.Post(ts.URL+"/scan"+q, "application/octet-stream", bytes.NewReader(payload))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 16; j++ {
				resp, err := http.Get(ts.URL + "/stats")
				if err != nil {
					t.Error(err)
					return
				}
				var st StatsResponse
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					t.Error(err)
				}
				resp.Body.Close()
			}
		}()
	}
	close(start)
	wg.Wait()
	// The skip counter must have moved and be readable consistently.
	if got := m.Stats().WindowsSkipped; got == 0 {
		t.Fatal("no windows skipped across 32 scans")
	}
}

// logPatterns is a small alert dictionary that passes every stride-2
// auto gate (few states, narrow alphabet, L2-resident pair tables), so
// the server under test serves the stride-2 rung by default.
func logPatterns() []string {
	return []string{"PANIC: runtime error", "segfault at address",
		"disk quota exceeded", "certificate expired"}
}

// TestStrideKnobEquivalence: the per-request stride=1 knob must pin
// the request onto the 1-byte loops (reported by ScanResponse.Stride)
// and still return exactly the same matches, in every scan mode and on
// /scan/batch and /scan/stream. A reload keeps reporting the stride,
// and /stats carries the pair-table shape.
func TestStrideKnobEquivalence(t *testing.T) {
	ts, _, m := newTestServer(t, logPatterns(), Config{Workers: 2})
	if got := m.Stats().Engine; got != "stride2" {
		t.Fatalf("fixture engine = %q, want stride2 (auto gates changed?)", got)
	}
	line := "ts=1 level=info msg=ok\nts=2 level=crit msg=\"PANIC: runtime error\"\n" +
		"ts=3 level=warn msg=\"disk quota exceeded on /var\"\nts=4 level=info msg=idle\n"
	payload := []byte(strings.Repeat(line, 200) + "certificate expired")
	var ref ScanResponse
	for i, q := range []string{"", "?stride=auto", "?stride=2", "?stride=1",
		"?mode=seq&stride=1", "?mode=seq&filter=off&stride=1", "?mode=adhoc&workers=3&stride=1"} {
		sr := postScan(t, ts.URL+"/scan"+q, payload)
		wantStride := 2
		if strings.Contains(q, "stride=1") {
			wantStride = 1
		}
		if sr.Stride != wantStride {
			t.Fatalf("%q: Stride=%d, want %d", q, sr.Stride, wantStride)
		}
		if batch := postScan(t, ts.URL+"/scan/batch"+q, payload); batch.Count != sr.Count ||
			batch.Stride != wantStride {
			t.Fatalf("/scan/batch%s: count=%d stride=%d, want count=%d stride=%d",
				q, batch.Count, batch.Stride, sr.Count, wantStride)
		}
		if stream := postScan(t, ts.URL+"/scan/stream"+q, payload); stream.Count != sr.Count ||
			stream.Stride != wantStride {
			t.Fatalf("/scan/stream%s: count=%d stride=%d, want count=%d stride=%d",
				q, stream.Count, stream.Stride, sr.Count, wantStride)
		}
		if i == 0 {
			ref = sr
			if ref.Count == 0 {
				t.Fatal("traffic has no matches")
			}
			continue
		}
		if sr.Count != ref.Count || !reflect.DeepEqual(sr.Matches, ref.Matches) {
			t.Fatalf("%q: %d matches, want %d (stride knob changed the output)", q, sr.Count, ref.Count)
		}
	}
	// A request cannot conjure strides the engine does not have.
	resp, err := http.Post(ts.URL+"/scan?stride=3", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stride=3 got %d, want 400", resp.StatusCode)
	}
	// /stats surfaces the rung and its pair-table footprint.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Dictionary.Engine != "stride2" || st.Dictionary.Stride != 2 || st.Dictionary.PairTableBytes <= 0 {
		t.Fatalf("/stats dictionary = engine %q stride %d pair %d, want stride-2 shape",
			st.Dictionary.Engine, st.Dictionary.Stride, st.Dictionary.PairTableBytes)
	}
	// A hot-swap onto the same rung must report the stride in the
	// reload response — dashboards alert on silent rung changes.
	dir := t.TempDir()
	path := filepath.Join(dir, "stride2.cms")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rresp, err := http.Post(ts.URL+"/reload?path="+path+"&format=artifact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr ReloadResponse
	err = json.NewDecoder(rresp.Body).Decode(&rr)
	rresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Engine != "stride2" || rr.Stride != 2 {
		t.Fatalf("/reload reported engine %q stride %d, want stride2/2", rr.Engine, rr.Stride)
	}
}
