package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellmatch/internal/core"
	"cellmatch/internal/registry"
)

// newTenantServer serves a namespace of tenant -> patterns.
func newTenantServer(t *testing.T, tenants map[string][]string, cfg Config) (*httptest.Server, *registry.Namespace) {
	t.Helper()
	ns := registry.NewNamespace()
	for name, pats := range tenants {
		m, err := core.CompileStrings(pats, core.Options{CaseFold: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := ns.Set(name, registry.NewWithMatcher(m, "inline-"+name)); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Namespace = ns
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, ns
}

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMultiTenantRouting: tenant paths resolve their own dictionaries,
// the bare paths stay on the default slot, unknown tenants 404, and
// per-tenant counters stay separate.
func TestMultiTenantRouting(t *testing.T) {
	ts, _ := newTenantServer(t, map[string][]string{
		registry.DefaultTenant: {"aardvark"},
		"acme":                 {"bumblebee"},
	}, Config{})

	probe := []byte("an aardvark met a bumblebee")

	sr := postScan(t, ts.URL+"/scan", probe)
	if sr.Tenant != registry.DefaultTenant || sr.Count != 1 || sr.Matches[0].Text != "aardvark" {
		t.Fatalf("default scan: %+v", sr)
	}
	sr = postScan(t, ts.URL+"/t/acme/scan", probe)
	if sr.Tenant != "acme" || sr.Count != 1 || sr.Matches[0].Text != "bumblebee" {
		t.Fatalf("tenant scan: %+v", sr)
	}
	// The tenant aliases of stream and batch resolve the same slot.
	sr = postScan(t, ts.URL+"/t/acme/scan/stream", probe)
	if sr.Tenant != "acme" || sr.Count != 1 {
		t.Fatalf("tenant stream: %+v", sr)
	}
	sr = postScan(t, ts.URL+"/t/acme/scan/batch", probe)
	if sr.Tenant != "acme" || sr.Count != 1 {
		t.Fatalf("tenant batch: %+v", sr)
	}

	for _, path := range []string{"/t/ghost/scan", "/t/ghost/scan/stream", "/t/ghost/scan/batch"} {
		resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(probe))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %d, want 404", path, resp.StatusCode)
		}
	}

	// Counters are per tenant: default saw 1 request, acme saw 3.
	if st := getStats(t, ts.URL+"/stats"); st.Tenant != registry.DefaultTenant || st.Requests != 1 {
		t.Fatalf("default stats: %+v", st)
	}
	st := getStats(t, ts.URL+"/t/acme/stats")
	if st.Tenant != "acme" || st.Requests != 3 {
		t.Fatalf("acme stats: %+v", st)
	}
	if len(st.Tenants) != 2 {
		t.Fatalf("tenant roster: %v", st.Tenants)
	}

	// /healthz reports every tenant's generation.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Generations map[string]uint64 `json:"generations"`
	}
	err = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hz.Generations[registry.DefaultTenant] != 1 || hz.Generations["acme"] != 1 {
		t.Fatalf("healthz generations: %v", hz.Generations)
	}
}

// The tentpole acceptance test: two tenants hot-swap independently
// while both serve concurrent /scan traffic, with zero failed requests
// and zero torn responses — every response's matches belong to the
// dictionary its own tenant+generation names, and a reload of one
// tenant never moves the other's generation.
func TestMultiTenantConcurrentHotSwapNoTorn(t *testing.T) {
	dir := t.TempDir()
	mkArtifact := func(name string, pats []string) string {
		m, err := core.CompileStrings(pats, core.Options{CaseFold: true})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Save(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	// Tenant "red" alternates aardvark/bumblebee dictionaries; tenant
	// "blue" alternates cormorant/dormouse. The probe contains all four
	// words once, so the correct count is always 1 and the matched text
	// names the dictionary that really served the scan.
	artifacts := map[string][2]string{
		"red":  {mkArtifact("red-a.cms", []string{"aardvark"}), mkArtifact("red-b.cms", []string{"bumblebee"})},
		"blue": {mkArtifact("blue-a.cms", []string{"cormorant"}), mkArtifact("blue-b.cms", []string{"dormouse"})},
	}
	wordOf := map[string]string{
		"red-a.cms": "aardvark", "red-b.cms": "bumblebee",
		"blue-a.cms": "cormorant", "blue-b.cms": "dormouse",
	}
	ts, _ := newTenantServer(t, map[string][]string{
		"red": {"aardvark"}, "blue": {"cormorant"},
	}, Config{})
	probe := []byte("aardvark bumblebee cormorant dormouse")

	stopc := make(chan struct{})
	errc := make(chan error, 64)
	var wg sync.WaitGroup
	var scans, reloads atomic.Uint64

	for i := 0; i < 6; i++ {
		tenant := []string{"red", "blue"}[i%2]
		mode := []string{"pool", "seq", "adhoc"}[i%3]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopc:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/t/"+tenant+"/scan?mode="+mode,
					"application/octet-stream", bytes.NewReader(probe))
				if err != nil {
					errc <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("tenant %s scan: %d: %s", tenant, resp.StatusCode, raw)
					return
				}
				var sr ScanResponse
				if err := json.Unmarshal(raw, &sr); err != nil {
					errc <- err
					return
				}
				if sr.Tenant != tenant {
					errc <- fmt.Errorf("asked tenant %s, served by %s", tenant, sr.Tenant)
					return
				}
				// Which word must this response's dictionary match?
				want := ""
				if sr.Source == "inline-"+tenant {
					want = map[string]string{"red": "aardvark", "blue": "cormorant"}[tenant]
				} else {
					want = wordOf[filepath.Base(sr.Source)]
				}
				if want == "" {
					errc <- fmt.Errorf("tenant %s: unknown source %q", tenant, sr.Source)
					return
				}
				if sr.Count != 1 || len(sr.Matches) != 1 || sr.Matches[0].Text != want {
					errc <- fmt.Errorf("torn response: tenant=%s source=%s gen=%d: %s",
						tenant, sr.Source, sr.Generation, raw)
					return
				}
				scans.Add(1)
			}
		}()
	}

	// One reloader per tenant, alternating that tenant's two artifacts.
	for tenant, paths := range artifacts {
		wg.Add(1)
		go func(tenant string, paths [2]string) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopc:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/t/"+tenant+"/reload?path="+paths[i%2], "", nil)
				if err != nil {
					errc <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("tenant %s reload: %d: %s", tenant, resp.StatusCode, raw)
					return
				}
				var rr ReloadResponse
				if err := json.Unmarshal(raw, &rr); err != nil {
					errc <- err
					return
				}
				if rr.Tenant != tenant {
					errc <- fmt.Errorf("reload of %s landed on %s", tenant, rr.Tenant)
					return
				}
				reloads.Add(1)
			}
		}(tenant, paths)
	}

	time.Sleep(500 * time.Millisecond)
	close(stopc)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if scans.Load() == 0 || reloads.Load() < 4 {
		t.Fatalf("race window too small: %d scans, %d reloads", scans.Load(), reloads.Load())
	}

	// Independence: each tenant's generation advanced by its own
	// reloads only (initial swap = gen 1, so gen-1 reloads each), and
	// the two sequences are unrelated.
	stRed := getStats(t, ts.URL+"/t/red/stats")
	stBlue := getStats(t, ts.URL+"/t/blue/stats")
	if stRed.Generation+stBlue.Generation-2 != uint64(reloads.Load()) {
		t.Fatalf("generations %d+%d don't account for %d reloads",
			stRed.Generation, stBlue.Generation, reloads.Load())
	}
	t.Logf("%d scans raced %d reloads across 2 tenants with zero torn responses", scans.Load(), reloads.Load())
}

// TestOverloadShedding: with MaxInflight saturated by held-open stream
// uploads, additional scans are refused with 429 + Retry-After while
// the admitted requests complete cleanly, and the peak queue depth
// never exceeds the budget.
func TestOverloadShedding(t *testing.T) {
	const budget = 2
	ts, _ := newTenantServer(t, map[string][]string{registry.DefaultTenant: {"needle"}},
		Config{MaxInflight: budget})

	// Saturate the budget with stream requests held open mid-body.
	type held struct {
		pw   *io.PipeWriter
		done chan ScanResponse
	}
	var holds []held
	for i := 0; i < budget; i++ {
		pr, pw := io.Pipe()
		done := make(chan ScanResponse, 1)
		go func() {
			resp, err := http.Post(ts.URL+"/scan/stream", "application/octet-stream", pr)
			if err != nil {
				t.Error(err)
				close(done)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				raw, _ := io.ReadAll(resp.Body)
				t.Errorf("held stream: %d: %s", resp.StatusCode, raw)
				close(done)
				return
			}
			var sr ScanResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				t.Error(err)
				close(done)
				return
			}
			done <- sr
		}()
		if _, err := pw.Write([]byte("a needle in ")); err != nil {
			t.Fatal(err)
		}
		holds = append(holds, held{pw, done})
	}
	// Wait until both are admitted.
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, ts.URL+"/stats").Inflight != budget {
		if time.Now().After(deadline) {
			t.Fatal("held streams never saturated the budget")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Every additional scan-path request must shed with 429.
	shed := 0
	for i := 0; i < 5; i++ {
		for _, path := range []string{"/scan", "/scan/batch", "/scan/stream"} {
			resp, err := http.Post(ts.URL+path, "application/octet-stream", strings.NewReader("needle"))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("%s under overload: %d, want 429", path, resp.StatusCode)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			shed++
		}
	}
	// Control-plane endpoints stay reachable under overload.
	if st := getStats(t, ts.URL+"/stats"); st.Shed != uint64(shed) || st.Inflight != budget {
		t.Fatalf("stats under overload: shed=%d inflight=%d, want %d/%d", st.Shed, st.Inflight, shed, budget)
	}

	// Release the held streams: the admitted requests must complete
	// with correct results (zero failed 200-responses).
	for _, h := range holds {
		if _, err := h.pw.Write([]byte("a haystack with a needle")); err != nil {
			t.Fatal(err)
		}
		h.pw.Close()
	}
	for _, h := range holds {
		sr, ok := <-h.done
		if !ok {
			t.Fatal("held stream failed")
		}
		if sr.Count != 2 {
			t.Fatalf("held stream count=%d, want 2", sr.Count)
		}
	}

	// Bounded queue depth: the high-water mark never exceeded the
	// budget, and with slots free the path serves again.
	st := getStats(t, ts.URL+"/stats")
	if st.InflightPeak > budget {
		t.Fatalf("inflight peak %d exceeded budget %d", st.InflightPeak, budget)
	}
	if sr := postScan(t, ts.URL+"/scan", []byte("a needle")); sr.Count != 1 {
		t.Fatalf("post-overload scan: %+v", sr)
	}
}

// TestQueuedBytesShedding: the byte budget sheds oversized admitted
// load independently of the request count.
func TestQueuedBytesShedding(t *testing.T) {
	ts, _ := newTenantServer(t, map[string][]string{registry.DefaultTenant: {"needle"}},
		Config{MaxQueuedBytes: 1 << 10})
	resp, err := http.Post(ts.URL+"/scan", "application/octet-stream", bytes.NewReader(make([]byte, 4<<10)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget body: %d, want 429", resp.StatusCode)
	}
	if sr := postScan(t, ts.URL+"/scan", []byte("small needle")); sr.Count != 1 {
		t.Fatalf("under-budget scan: %+v", sr)
	}
}

// TestChunkedStreamMeteredAdmission: a chunked upload declares no
// Content-Length, so its up-front admission reservation is zero — the
// regression pinned here is that its actual bytes are still metered
// against MaxQueuedBytes as they are read, shedding mid-stream with
// 429 + Retry-After instead of admitting an unbounded body, with the
// metered reservation fully drained afterward. In-budget chunked
// streams still serve, and the buffered /scan path meters chunked
// bodies the same way.
func TestChunkedStreamMeteredAdmission(t *testing.T) {
	m, err := core.CompileStrings([]string{"needle"}, core.Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Registry:       registry.NewWithMatcher(m, "inline"),
		MaxQueuedBytes: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	// Hiding the reader's concrete type keeps the client from sniffing
	// a Content-Length, so the request goes out Transfer-Encoding:
	// chunked and the server sees ContentLength -1.
	chunked := func(path string, body []byte) *http.Response {
		req, err := http.NewRequest("POST", ts.URL+path, struct{ io.Reader }{bytes.NewReader(body)})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// 8 KiB of chunked body against a 1 KiB budget must shed once the
	// metered reads overflow.
	resp := chunked("/scan/stream", make([]byte, 8<<10))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget chunked stream: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if q := s.adm.queuedBytes.Load(); q != 0 {
		t.Fatalf("queued-bytes gauge leaked %d after mid-stream shed", q)
	}
	if s.adm.shed.Load() == 0 {
		t.Fatal("mid-stream shed not counted")
	}

	// An in-budget chunked stream serves normally and drains its
	// metered reservation.
	body := append(make([]byte, 256), "a needle in the haystack"...)
	resp = chunked("/scan/stream", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-budget chunked stream: %d, want 200", resp.StatusCode)
	}
	if q := s.adm.queuedBytes.Load(); q != 0 {
		t.Fatalf("queued-bytes gauge leaked %d after in-budget stream", q)
	}

	// The buffered /scan path reads the same metered body.
	resp = chunked("/scan", make([]byte, 8<<10))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget chunked /scan: %d, want 429", resp.StatusCode)
	}
	if q := s.adm.queuedBytes.Load(); q != 0 {
		t.Fatalf("queued-bytes gauge leaked %d after /scan shed", q)
	}
}

// TestMetricsExposition: /metrics serves Prometheus text with the
// service counters, per-tenant labels, and admission gauges.
func TestMetricsExposition(t *testing.T) {
	ts, _ := newTenantServer(t, map[string][]string{
		registry.DefaultTenant: {"aardvark"},
		"acme":                 {"bumblebee"},
	}, Config{MaxInflight: 8})
	postScan(t, ts.URL+"/scan", []byte("one aardvark"))
	postScan(t, ts.URL+"/t/acme/scan", []byte("two bumblebee bumblebee"))
	postScan(t, ts.URL+"/t/acme/scan/batch", []byte("bumblebee"))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE cellmatch_requests_total counter",
		`cellmatch_requests_total{tenant="default"} 1`,
		`cellmatch_requests_total{tenant="acme"} 2`,
		`cellmatch_matches_total{tenant="acme"} 3`,
		`cellmatch_dictionary_generation{tenant="default"} 1`,
		`cellmatch_reloads_total{tenant="acme",result="ok"}`,
		"# TYPE cellmatch_inflight_requests gauge",
		"cellmatch_inflight_requests 0",
		"cellmatch_requests_shed_total 0",
		"cellmatch_batch_payloads_total 1",
		"cellmatch_pool_workers",
		"cellmatch_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// Satellite regression: the workers knob is only meaningful with
// mode=adhoc; pool and seq must reject it with 400 instead of parsing
// and silently ignoring it.
func TestWorkersKnobRejectedOutsideAdhoc(t *testing.T) {
	ts, _, _ := newTestServer(t, []string{"needle"}, Config{})
	for _, q := range []string{
		"?workers=4",           // default mode is pool
		"?mode=pool&workers=4", //
		"?mode=seq&workers=1",  //
	} {
		for _, path := range []string{"/scan", "/scan/stream"} {
			resp, err := http.Post(ts.URL+path+q, "application/octet-stream", strings.NewReader("x"))
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s%s: %d, want 400", path, q, resp.StatusCode)
			}
			if !strings.Contains(string(raw), "workers") {
				t.Fatalf("%s%s error does not name the knob: %s", path, q, raw)
			}
		}
	}
	// adhoc still honors it.
	if sr := postScan(t, ts.URL+"/scan?mode=adhoc&workers=2", []byte("a needle")); sr.Count != 1 {
		t.Fatalf("adhoc workers scan: %+v", sr)
	}
}

// Satellite regression: /scan/stream maps body-read failures to 400
// and engine-internal errors to 500, matching /scan's split.
func TestStreamErrorStatusSplit(t *testing.T) {
	// Classification: a recorded body-read failure is the client's
	// fault; an engine failure without one is ours.
	cr := &countingReader{err: fmt.Errorf("connection reset")}
	if got := streamScanStatus(cr); got != http.StatusBadRequest {
		t.Fatalf("body-read failure classified %d, want 400", got)
	}
	if got := streamScanStatus(&countingReader{}); got != http.StatusInternalServerError {
		t.Fatalf("internal scan failure classified %d, want 500", got)
	}

	// End to end: a body that fails mid-read must answer 400.
	m, err := core.CompileStrings([]string{"needle"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Registry: registry.NewWithMatcher(m, "inline")})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	req := httptest.NewRequest("POST", "/scan/stream", io.MultiReader(
		strings.NewReader(strings.Repeat("needle in a haystack ", 100)),
		&failingReader{err: fmt.Errorf("client went away")},
	))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("mid-body failure: %d, want 400: %s", rec.Code, rec.Body)
	}
}

type failingReader struct{ err error }

func (f *failingReader) Read([]byte) (int, error) { return 0, f.err }

// Satellite regression: under CaseFold, /scan's Text must be the
// payload slice (the bytes as they appeared on the wire), equal to
// payload[Start:End], not the canonical pattern.
func TestCaseFoldTextIsPayloadSlice(t *testing.T) {
	ts, _, _ := newTestServer(t, []string{"needle"}, Config{}) // CaseFold: true
	payload := []byte("a NeEdLe and a NEEDLE")
	for _, path := range []string{"/scan", "/scan?mode=seq", "/scan/batch"} {
		sr := postScan(t, ts.URL+path, payload)
		if sr.Count != 2 {
			t.Fatalf("%s: count=%d, want 2", path, sr.Count)
		}
		for _, hit := range sr.Matches {
			want := string(payload[hit.Start:hit.End])
			if hit.Text != want {
				t.Fatalf("%s: Text=%q, want payload slice %q", path, hit.Text, want)
			}
		}
		if sr.Matches[0].Text != "NeEdLe" || sr.Matches[1].Text != "NEEDLE" {
			t.Fatalf("%s: wire-case lost: %+v", path, sr.Matches)
		}
	}
	// /scan/stream does not buffer the payload: Text falls back to the
	// canonical pattern, offsets stay exact.
	sr := postScan(t, ts.URL+"/scan/stream", payload)
	if sr.Count != 2 || sr.Matches[0].Text != "needle" {
		t.Fatalf("stream fallback: %+v", sr.Matches)
	}
	if got := string(payload[sr.Matches[0].Start:sr.Matches[0].End]); got != "NeEdLe" {
		t.Fatalf("stream offsets: %q", got)
	}
}
