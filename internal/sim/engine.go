// Package sim provides the discrete-event simulation kernel that drives
// every timing model in this repository: the EIB bandwidth model, the
// MFC DMA engines, the double-buffering pipeline and the dynamic STT
// replacement schedule.
//
// Time is kept in integer picoseconds so that a 3.2 GHz clock cycle
// (312.5 ps) is exactly representable and event ordering is
// deterministic: ties are broken by scheduling order.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in picoseconds.
type Time int64

// Common time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros returns the time as a float64 number of microseconds, the unit
// the paper's schedules (Figures 5 and 8) are labeled in.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns the time as float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// CyclesToTime converts a cycle count at clockHz to simulated time,
// rounding to the nearest picosecond.
func CyclesToTime(cycles int64, clockHz float64) Time {
	return Time(float64(cycles) * 1e12 / clockHz)
}

// BytesToTime returns the time to move n bytes at rate bytes/second.
func BytesToTime(n int64, bytesPerSecond float64) Time {
	if bytesPerSecond <= 0 {
		panic("sim: non-positive rate")
	}
	return Time(float64(n) * 1e12 / bytesPerSecond)
}

type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// EventID identifies a scheduled event so it can be canceled.
type EventID struct{ ev *event }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	pq      eventHeap
	now     Time
	seq     uint64
	stopped bool
	steps   uint64
}

// New returns a fresh engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// that is always a model bug.
func (e *Engine) Schedule(at Time, fn func()) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
	return EventID{ev}
}

// After runs fn after delay d from the current time.
func (e *Engine) After(d Time, fn func()) EventID {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op and returns false.
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.dead {
		return false
	}
	ev.dead = true
	return true
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue is empty or Stop is
// called. It returns the final simulated time.
func (e *Engine) Run() Time {
	return e.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= deadline. The clock is
// left at the deadline if the queue still has later events, otherwise at
// the last executed event.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		ev := e.pq[0]
		if ev.at > deadline {
			e.now = deadline
			return e.now
		}
		heap.Pop(&e.pq)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.steps++
		ev.fn()
	}
	return e.now
}

// Pending reports the number of live events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.pq {
		if !ev.dead {
			n++
		}
	}
	return n
}
