package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestUnitsExact(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Fatal("second/picosecond ratio wrong")
	}
	// One 3.2 GHz cycle is 312.5 ps; 2 cycles must be exactly 625 ps.
	if got := CyclesToTime(2, 3.2e9); got != 625 {
		t.Fatalf("2 cycles at 3.2GHz = %d ps, want 625", got)
	}
}

func TestBytesToTime(t *testing.T) {
	// 16 KB at 2.76 GB/s is the paper's 5.94 us input-block transfer.
	got := BytesToTime(16384, 2.7565e9)
	us := got.Micros()
	if us < 5.9 || us > 6.0 {
		t.Fatalf("16KB at 2.76GB/s = %.3f us, want ~5.94", us)
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	e := New()
	var trace []Time
	e.After(5, func() {
		trace = append(trace, e.Now())
		e.After(7, func() {
			trace = append(trace, e.Now())
		})
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 5 || trace[1] != 12 {
		t.Fatalf("trace = %v", trace)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	id := e.Schedule(10, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("first cancel should succeed")
	}
	if e.Cancel(id) {
		t.Fatal("second cancel should fail")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Schedule(30, func() { got = append(got, 3) })
	e.RunUntil(20)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %v", e.Now())
	}
	e.Run()
	if len(got) != 3 {
		t.Fatalf("got %v after resume", got)
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	// Resuming runs the remaining event.
	e.Run()
	if count != 2 {
		t.Fatalf("count after resume = %d", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestPending(t *testing.T) {
	e := New()
	a := e.Schedule(10, func() {})
	e.Schedule(20, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Cancel(a)
	if e.Pending() != 1 {
		t.Fatalf("pending after cancel = %d", e.Pending())
	}
}

// Property: events fire in nondecreasing time order regardless of the
// insertion order, including events scheduled from inside other events.
func TestRandomizedOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		e := New()
		var fired []Time
		n := 200
		times := make([]Time, n)
		for i := range times {
			times[i] = Time(rng.Intn(1000))
		}
		for _, at := range times {
			at := at
			e.Schedule(at, func() {
				fired = append(fired, e.Now())
				// Occasionally schedule a follow-up.
				if rng.Intn(4) == 0 {
					e.After(Time(rng.Intn(50)), func() {
						fired = append(fired, e.Now())
					})
				}
			})
		}
		e.Run()
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			t.Fatalf("trial %d: events fired out of order", trial)
		}
	}
}

func TestStepsCounter(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Steps() != 5 {
		t.Fatalf("steps = %d", e.Steps())
	}
}
