package sim

import "testing"

func TestTimeSeconds(t *testing.T) {
	if got := Time(2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %v", got)
	}
}
