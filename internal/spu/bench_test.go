package spu

import "testing"

// BenchmarkSimulatorRate measures simulated instructions per host
// second — the simulator's own speed, which bounds how large a Table 1
// measurement can be.
func BenchmarkSimulatorRate(b *testing.B) {
	// A tight dependent loop: 10 instructions per iteration.
	code := []Instr{
		{Op: OpIL, Rt: 1, Imm: 1000},
		{Op: OpIL, Rt: 2, Imm: 0},
		{Op: OpAI, Rt: 2, Ra: 2, Imm: 1}, // 2: loop
		{Op: OpAI, Rt: 3, Ra: 2, Imm: 2},
		{Op: OpA, Rt: 4, Ra: 3, Rb: 2},
		{Op: OpROTQBYI, Rt: 5, Ra: 4, Imm: 1},
		{Op: OpANDI, Rt: 6, Ra: 5, Imm: 255},
		{Op: OpAI, Rt: 1, Ra: 1, Imm: -1},
		{Op: OpBRNZ, Rt: 1, Target: 2, Hinted: true},
		{Op: OpSTOP},
	}
	p := &Program{Code: code}
	c := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		if err := c.Run(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.Prof.Instructions), "sim_instructions/op")
}

// BenchmarkLoadStoreRate exercises the local-store path.
func BenchmarkLoadStoreRate(b *testing.B) {
	code := []Instr{
		{Op: OpIL, Rt: 1, Imm: 2000},
		{Op: OpILA, Rt: 2, Imm: 4096},
		{Op: OpLQD, Rt: 3, Ra: 2, Imm: 0}, // 2: loop
		{Op: OpSTQD, Rt: 3, Ra: 2, Imm: 16},
		{Op: OpAI, Rt: 1, Ra: 1, Imm: -1},
		{Op: OpBRNZ, Rt: 1, Target: 2, Hinted: true},
		{Op: OpSTOP},
	}
	p := &Program{Code: code}
	c := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		if err := c.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}
