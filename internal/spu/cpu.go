package spu

import (
	"fmt"

	"cellmatch/internal/v128"
)

// LSSize is the local store capacity (256 KB).
const LSSize = 256 * 1024

// lsMask wraps local-store addresses, as the real SPU does.
const lsMask = LSSize - 1

// Params are the timing-model constants. They are the published SPU
// pipeline characteristics; tests pin the derived Table 1 metrics.
type Params struct {
	// BranchPenalty is the flush cost of a taken branch that was not
	// prepared by a branch hint (18-19 cycles on silicon).
	BranchPenalty int64
	// MaxInstructions guards against runaway kernels.
	MaxInstructions int64
}

// DefaultParams returns the silicon-calibrated constants.
func DefaultParams() Params {
	return Params{BranchPenalty: 18, MaxInstructions: 200_000_000}
}

// CPU is one SPU: registers, local store, and profiling state.
type CPU struct {
	R      [128]v128.Vec
	LS     []byte
	Params Params
	Prof   Profile
}

// New returns a CPU with a zeroed local store.
func New() *CPU {
	return &CPU{LS: make([]byte, LSSize), Params: DefaultParams()}
}

// Reset clears registers and profile but keeps the local store.
func (c *CPU) Reset() {
	c.R = [128]v128.Vec{}
	c.Prof = Profile{}
}

// loadQ reads the aligned quadword containing addr.
func (c *CPU) loadQ(addr uint32) v128.Vec {
	a := addr & lsMask &^ 15
	return v128.FromBytes(c.LS[a : a+16])
}

// storeQ writes the aligned quadword containing addr.
func (c *CPU) storeQ(addr uint32, v v128.Vec) {
	a := addr & lsMask &^ 15
	copy(c.LS[a:a+16], v[:])
}

func signext16(imm int32) uint32 { return uint32(int32(int16(imm))) }
func signext10(imm int32) uint32 {
	v := imm & 0x3FF
	if v&0x200 != 0 {
		v |= ^int32(0x3FF)
	}
	return uint32(v)
}

// step functionally executes one instruction and reports whether a
// branch was taken.
func (c *CPU) step(in Instr) (taken bool, err error) {
	R := &c.R
	switch in.Op {
	case OpIL:
		R[in.Rt] = v128.SplatWord(signext16(in.Imm))
	case OpILHU:
		R[in.Rt] = v128.SplatWord(uint32(uint16(in.Imm)) << 16)
	case OpIOHL:
		R[in.Rt] = v128.Or(R[in.Rt], v128.SplatWord(uint32(uint16(in.Imm))))
	case OpILA:
		R[in.Rt] = v128.SplatWord(uint32(in.Imm) & 0x3FFFF)
	case OpA:
		R[in.Rt] = v128.Add32(R[in.Ra], R[in.Rb])
	case OpAI:
		R[in.Rt] = v128.Add32(R[in.Ra], v128.SplatWord(signext10(in.Imm)))
	case OpSF:
		R[in.Rt] = v128.Sub32(R[in.Rb], R[in.Ra])
	case OpAND:
		R[in.Rt] = v128.And(R[in.Ra], R[in.Rb])
	case OpANDI:
		R[in.Rt] = v128.And(R[in.Ra], v128.SplatWord(signext10(in.Imm)))
	case OpANDBI:
		R[in.Rt] = v128.And(R[in.Ra], v128.SplatByte(byte(in.Imm)))
	case OpANDC:
		R[in.Rt] = v128.AndC(R[in.Ra], R[in.Rb])
	case OpOR:
		R[in.Rt] = v128.Or(R[in.Ra], R[in.Rb])
	case OpORI:
		R[in.Rt] = v128.Or(R[in.Ra], v128.SplatWord(signext10(in.Imm)))
	case OpXOR:
		R[in.Rt] = v128.Xor(R[in.Ra], R[in.Rb])
	case OpSHLI:
		R[in.Rt] = v128.Shl32(R[in.Ra], uint(in.Imm)&63)
	case OpROTMI:
		R[in.Rt] = v128.Shr32(R[in.Ra], uint(in.Imm)&63)
	case OpCEQ:
		R[in.Rt] = v128.CmpEq32(R[in.Ra], R[in.Rb])
	case OpCEQI:
		R[in.Rt] = v128.CmpEq32(R[in.Ra], v128.SplatWord(signext10(in.Imm)))
	case OpNOP, OpLNOP, OpSTOP:
	case OpLQD:
		c.Prof.Loads++
		R[in.Rt] = c.loadQ(R[in.Ra].Preferred() + uint32(in.Imm))
	case OpLQX:
		c.Prof.Loads++
		R[in.Rt] = c.loadQ(R[in.Ra].Preferred() + R[in.Rb].Preferred())
	case OpSTQD:
		c.Prof.Stores++
		c.storeQ(R[in.Ra].Preferred()+uint32(in.Imm), R[in.Rt])
	case OpSTQX:
		c.Prof.Stores++
		c.storeQ(R[in.Ra].Preferred()+R[in.Rb].Preferred(), R[in.Rt])
	case OpSHUFB:
		R[in.Rt] = v128.Shuffle(R[in.Ra], R[in.Rb], R[in.Rc])
	case OpROTQBY:
		R[in.Rt] = v128.RotByBytes(R[in.Ra], int(R[in.Rb].Preferred()&15))
	case OpROTQBYI:
		R[in.Rt] = v128.RotByBytes(R[in.Ra], int(in.Imm)&15)
	case OpBR:
		return true, nil
	case OpBRZ:
		return R[in.Rt].Preferred() == 0, nil
	case OpBRNZ:
		return R[in.Rt].Preferred() != 0, nil
	default:
		return false, fmt.Errorf("spu: unimplemented opcode %v", in.Op)
	}
	return false, nil
}

// Run executes the program from instruction 0 until an OpSTOP, with
// the dual-issue in-order timing model. The profile is accumulated
// into c.Prof (call Reset between independent measurements).
func (c *CPU) Run(p *Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	code := p.Code
	n := len(code)
	var ready [128]int64
	cycle := c.Prof.Cycles
	pc := 0
	for pc < n {
		if c.Prof.Instructions >= c.Params.MaxInstructions {
			return fmt.Errorf("spu: instruction limit exceeded (%d)", c.Params.MaxInstructions)
		}
		a := code[pc]
		if a.Op == OpSTOP {
			break
		}
		// Earliest issue time for a.
		t := cycle
		for _, s := range a.Sources() {
			if ready[s] > t {
				t = ready[s]
			}
		}
		// Dual-issue window: an even-pipe instruction paired with the
		// following odd-pipe instruction, no intra-pair hazard. (The
		// silicon additionally requires address parity; compilers pad
		// with nops to achieve it, so the model assumes alignment.)
		if pc+1 < n && PipeOf(a.Op) == Even {
			b := code[pc+1]
			if PipeOf(b.Op) == Odd && !IsBranch(b.Op) && b.Op != OpSTOP {
				tb := t
				hazard := false
				aw := a.Writes()
				for _, s := range b.Sources() {
					if int(s) == aw {
						hazard = true
					}
					if ready[s] > tb {
						tb = ready[s]
					}
				}
				if bw := b.Writes(); bw >= 0 && bw == aw {
					hazard = true
				}
				if !hazard && tb <= t {
					c.Prof.StallCycles += t - cycle
					if _, err := c.step(a); err != nil {
						return err
					}
					if _, err := c.step(b); err != nil {
						return err
					}
					if aw >= 0 {
						ready[aw] = t + int64(Latency(a.Op))
					}
					if bw := b.Writes(); bw >= 0 {
						ready[bw] = t + int64(Latency(b.Op))
					}
					c.Prof.DualCycles++
					c.Prof.Instructions += 2
					cycle = t + 1
					pc += 2
					continue
				}
			}
		}
		// Single issue.
		c.Prof.StallCycles += t - cycle
		taken, err := c.step(a)
		if err != nil {
			return err
		}
		if w := a.Writes(); w >= 0 {
			ready[w] = t + int64(Latency(a.Op))
		}
		c.Prof.SingleCycles++
		c.Prof.Instructions++
		cycle = t + 1
		if IsBranch(a.Op) && taken {
			pc = int(a.Target)
			if !a.Hinted {
				cycle += c.Params.BranchPenalty
				c.Prof.StallCycles += c.Params.BranchPenalty
				c.Prof.BranchFlushes++
			}
		} else {
			pc++
		}
	}
	c.Prof.Cycles = cycle
	return nil
}

// WriteLS copies data into the local store at addr (wrapping masked).
func (c *CPU) WriteLS(addr uint32, data []byte) {
	for i, b := range data {
		c.LS[(addr+uint32(i))&lsMask] = b
	}
}

// ReadLS copies n bytes out of the local store at addr.
func (c *CPU) ReadLS(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c.LS[(addr+uint32(i))&lsMask]
	}
	return out
}
