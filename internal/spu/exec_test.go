package spu

import (
	"math/rand"
	"testing"

	"cellmatch/internal/v128"
)

// execOne loads the operand registers, runs a single instruction, and
// returns the destination value.
func execOne(t *testing.T, in Instr, ra, rb, rc v128.Vec) v128.Vec {
	t.Helper()
	c := New()
	c.R[in.Ra] = ra
	c.R[in.Rb] = rb
	c.R[in.Rc] = rc
	p := &Program{Code: []Instr{in, {Op: OpSTOP}}}
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	return c.R[in.Rt]
}

// TestOpcodeSemanticsVsV128 cross-checks every register-to-register
// opcode against the v128 primitives on random operands. The two
// implementations are written independently enough (switch dispatch vs
// direct calls) that a transcription slip in either surfaces here.
func TestOpcodeSemanticsVsV128(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	randVec := func() v128.Vec {
		var v v128.Vec
		rng.Read(v[:])
		return v
	}
	for trial := 0; trial < 300; trial++ {
		a, b, c := randVec(), randVec(), randVec()
		imm := int32(rng.Intn(1024) - 512)
		shift := int32(rng.Intn(32))
		cases := []struct {
			name string
			in   Instr
			want v128.Vec
		}{
			{"a", Instr{Op: OpA, Rt: 3, Ra: 1, Rb: 2}, v128.Add32(a, b)},
			{"sf", Instr{Op: OpSF, Rt: 3, Ra: 1, Rb: 2}, v128.Sub32(b, a)},
			{"and", Instr{Op: OpAND, Rt: 3, Ra: 1, Rb: 2}, v128.And(a, b)},
			{"andc", Instr{Op: OpANDC, Rt: 3, Ra: 1, Rb: 2}, v128.AndC(a, b)},
			{"or", Instr{Op: OpOR, Rt: 3, Ra: 1, Rb: 2}, v128.Or(a, b)},
			{"xor", Instr{Op: OpXOR, Rt: 3, Ra: 1, Rb: 2}, v128.Xor(a, b)},
			{"ceq", Instr{Op: OpCEQ, Rt: 3, Ra: 1, Rb: 2}, v128.CmpEq32(a, b)},
			{"shli", Instr{Op: OpSHLI, Rt: 3, Ra: 1, Imm: shift}, v128.Shl32(a, uint(shift))},
			{"rotmi", Instr{Op: OpROTMI, Rt: 3, Ra: 1, Imm: shift}, v128.Shr32(a, uint(shift))},
			{"rotqbyi", Instr{Op: OpROTQBYI, Rt: 3, Ra: 1, Imm: imm},
				v128.RotByBytes(a, int(imm)&15)},
			{"shufb", Instr{Op: OpSHUFB, Rt: 4, Ra: 1, Rb: 2, Rc: 3},
				v128.Shuffle(a, b, c)},
			{"ai", Instr{Op: OpAI, Rt: 3, Ra: 1, Imm: imm & 0x1FF},
				v128.Add32(a, v128.SplatWord(uint32(imm&0x1FF)))},
		}
		for _, tc := range cases {
			got := execOne(t, tc.in, a, b, c)
			if got != tc.want {
				t.Fatalf("trial %d op %s: got %v want %v", trial, tc.name, got, tc.want)
			}
		}
	}
}

// TestRotqbyUsesLowBits: rotation amount is ra's preferred slot & 15.
func TestRotqbyUsesLowBits(t *testing.T) {
	c := New()
	var v v128.Vec
	for i := range v {
		v[i] = byte(i)
	}
	c.R[1] = v
	c.R[2] = v128.SplatWord(0x12345) // & 15 = 5
	p := &Program{Code: []Instr{
		{Op: OpROTQBY, Rt: 3, Ra: 1, Rb: 2},
		{Op: OpSTOP},
	}}
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if c.R[3][0] != 5 {
		t.Fatalf("rotqby amount: got byte %d", c.R[3][0])
	}
}

// TestLSWraparound: addresses wrap modulo the 256 KB local store, as
// on silicon.
func TestLSWraparound(t *testing.T) {
	c := New()
	c.LS[0] = 0x77
	p := &Program{Code: []Instr{
		{Op: OpIL, Rt: 1, Imm: -1}, // 0xFFFFFFFF
		{Op: OpLQD, Rt: 2, Ra: 1, Imm: 1},
		{Op: OpSTOP},
	}}
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if c.R[2][0] != 0x77 {
		t.Fatalf("wrapped load: %v", c.R[2])
	}
}

// TestStoreReadsRt: STQD must treat Rt as a source, not clobber it.
func TestStoreReadsRt(t *testing.T) {
	c := New()
	c.R[1] = v128.SplatByte(0xAB)
	c.R[2] = v128.SplatWord(512)
	p := &Program{Code: []Instr{
		{Op: OpSTQD, Rt: 1, Ra: 2, Imm: 0},
		{Op: OpSTOP},
	}}
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if c.R[1] != v128.SplatByte(0xAB) {
		t.Fatal("store modified its source register")
	}
	if got := c.ReadLS(512, 1)[0]; got != 0xAB {
		t.Fatalf("stored byte = %#x", got)
	}
}

// TestBranchNotTakenFallsThrough covers BRZ/BRNZ in both directions.
func TestBranchConditions(t *testing.T) {
	run := func(op Op, val int32) uint32 {
		c := New()
		p := &Program{Code: []Instr{
			{Op: OpIL, Rt: 1, Imm: val},
			{Op: OpIL, Rt: 2, Imm: 0},
			{Op: op, Rt: 1, Target: 5, Hinted: true},
			{Op: OpIL, Rt: 2, Imm: 111}, // skipped when branch taken
			{Op: OpSTOP},
			{Op: OpIL, Rt: 2, Imm: 222}, // branch target
			{Op: OpSTOP},
		}}
		if err := c.Run(p); err != nil {
			t.Fatal(err)
		}
		return c.R[2].Preferred()
	}
	if got := run(OpBRNZ, 1); got != 222 {
		t.Fatalf("brnz taken: %d", got)
	}
	if got := run(OpBRNZ, 0); got != 111 {
		t.Fatalf("brnz not taken: %d", got)
	}
	if got := run(OpBRZ, 0); got != 222 {
		t.Fatalf("brz taken: %d", got)
	}
	if got := run(OpBRZ, 7); got != 111 {
		t.Fatalf("brz not taken: %d", got)
	}
}

// TestSourcesAndWritesConsistency: every opcode's Sources/Writes
// metadata must cover the registers its execution actually touches —
// the scheduler and allocator depend on this metadata being exact.
func TestSourcesWritesMetadata(t *testing.T) {
	cases := []struct {
		in      Instr
		sources int
		writes  bool
	}{
		{Instr{Op: OpIL, Rt: 1}, 0, true},
		{Instr{Op: OpIOHL, Rt: 1}, 1, true}, // reads and writes rt
		{Instr{Op: OpA, Rt: 1, Ra: 2, Rb: 3}, 2, true},
		{Instr{Op: OpAI, Rt: 1, Ra: 2}, 1, true},
		{Instr{Op: OpLQD, Rt: 1, Ra: 2}, 1, true},
		{Instr{Op: OpLQX, Rt: 1, Ra: 2, Rb: 3}, 2, true},
		{Instr{Op: OpSTQD, Rt: 1, Ra: 2}, 2, false},
		{Instr{Op: OpSTQX, Rt: 1, Ra: 2, Rb: 3}, 3, false},
		{Instr{Op: OpSHUFB, Rt: 1, Ra: 2, Rb: 3, Rc: 4}, 3, true},
		{Instr{Op: OpBRNZ, Rt: 1}, 1, false},
		{Instr{Op: OpBR}, 0, false},
		{Instr{Op: OpNOP}, 0, false},
		{Instr{Op: OpSTOP}, 0, false},
	}
	for _, tc := range cases {
		if got := len(tc.in.Sources()); got != tc.sources {
			t.Errorf("%v: sources = %d, want %d", tc.in.Op, got, tc.sources)
		}
		if got := tc.in.Writes() >= 0; got != tc.writes {
			t.Errorf("%v: writes = %v, want %v", tc.in.Op, got, tc.writes)
		}
	}
}

// TestDisassembly smoke-tests the instruction printer used in kernel
// dumps.
func TestDisassembly(t *testing.T) {
	cases := map[string]Instr{
		"a r1, r2, r3":         {Op: OpA, Rt: 1, Ra: 2, Rb: 3},
		"lqd r4, 16(r5)":       {Op: OpLQD, Rt: 4, Ra: 5, Imm: 16},
		"shufb r1, r2, r3, r4": {Op: OpSHUFB, Rt: 1, Ra: 2, Rb: 3, Rc: 4},
		"brnz r7, 12":          {Op: OpBRNZ, Rt: 7, Target: 12},
		"stop":                 {Op: OpSTOP},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("disasm: got %q want %q", got, want)
		}
	}
	if PipeOf(OpA) != Even || PipeOf(OpLQD) != Odd {
		t.Error("pipe assignment")
	}
	if Latency(OpLQD) != 6 || Latency(OpA) != 2 || Latency(OpSHUFB) != 4 {
		t.Error("latency table")
	}
}
