// Package spu is an instruction-level model of the Cell Synergistic
// Processing Unit: 128 registers of 128 bits, a 256 KB local store,
// and two in-order issue pipelines (even: fixed point; odd: load/store,
// shuffle, branch) that can issue one instruction each per cycle.
//
// The model has two halves:
//
//   - functional: every instruction computes real values over v128
//     vectors and the local store, so the DFA kernels produce actual
//     match counts (verified against a native-Go oracle);
//   - timing: an in-order dual-issue model with an operand scoreboard,
//     per-class latencies and an unhinted-branch flush penalty, which
//     reproduces the paper's Table 1 metrics (CPI, dual-issue rate,
//     dependency stalls) as mechanical consequences of the emitted
//     instruction stream.
//
// The ISA is the subset the paper's kernels need. Immediate fields are
// plain byte/bit quantities (the assembler does the encoding games real
// SPU instructions play, like scaling quadword offsets).
package spu

import "fmt"

// Pipe identifies the execution pipeline of an instruction.
type Pipe int

const (
	// Even is the fixed-point/arithmetic pipeline.
	Even Pipe = iota
	// Odd is the load/store, shuffle and branch pipeline.
	Odd
)

// Op is an SPU opcode.
type Op int

// The supported instruction subset.
const (
	// Even pipe: constant formation and fixed point.
	OpIL    Op = iota // rt = signext(imm16) in all words
	OpILHU            // rt = imm16 << 16 in all words
	OpIOHL            // rt |= imm16 (low halfword of each word)
	OpILA             // rt = imm18 (unsigned) in all words
	OpA               // rt = ra + rb (word)
	OpAI              // rt = ra + signext(imm10) (word)
	OpSF              // rt = rb - ra (word)
	OpAND             // rt = ra & rb
	OpANDI            // rt = ra & signext(imm10) (word)
	OpANDBI           // rt = ra & imm8 (byte)
	OpANDC            // rt = ra &^ rb
	OpOR              // rt = ra | rb
	OpORI             // rt = ra | signext(imm10) (word)
	OpXOR             // rt = ra ^ rb
	OpSHLI            // rt = ra << imm (word)
	OpROTMI           // rt = ra >> imm logical (word); imm is the right-shift amount
	OpCEQ             // rt = ra == rb ? ~0 : 0 (word)
	OpCEQI            // rt = ra == signext(imm10) ? ~0 : 0 (word)
	OpNOP             // even-pipe no-op

	// Odd pipe: local store, permute, branches.
	OpLQD     // rt = LS[(ra.pref + imm) & ~15]
	OpLQX     // rt = LS[(ra.pref + rb.pref) & ~15]
	OpSTQD    // LS[(ra.pref + imm) & ~15] = rt
	OpSTQX    // LS[(ra.pref + rb.pref) & ~15] = rt
	OpSHUFB   // rt = shuffle(ra, rb, pattern rc)
	OpROTQBY  // rt = ra rotated left by rb.pref & 15 bytes
	OpROTQBYI // rt = ra rotated left by imm & 15 bytes
	OpBR      // unconditional branch to Target
	OpBRZ     // branch if rt.pref == 0
	OpBRNZ    // branch if rt.pref != 0
	OpLNOP    // odd-pipe no-op
	OpSTOP    // halt execution

	opCount
)

var opNames = [...]string{
	OpIL: "il", OpILHU: "ilhu", OpIOHL: "iohl", OpILA: "ila",
	OpA: "a", OpAI: "ai", OpSF: "sf",
	OpAND: "and", OpANDI: "andi", OpANDBI: "andbi", OpANDC: "andc",
	OpOR: "or", OpORI: "ori", OpXOR: "xor",
	OpSHLI: "shli", OpROTMI: "rotmi",
	OpCEQ: "ceq", OpCEQI: "ceqi", OpNOP: "nop",
	OpLQD: "lqd", OpLQX: "lqx", OpSTQD: "stqd", OpSTQX: "stqx",
	OpSHUFB: "shufb", OpROTQBY: "rotqby", OpROTQBYI: "rotqbyi",
	OpBR: "br", OpBRZ: "brz", OpBRNZ: "brnz", OpLNOP: "lnop",
	OpSTOP: "stop",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// PipeOf returns the pipeline an opcode issues to.
func PipeOf(o Op) Pipe {
	switch o {
	case OpLQD, OpLQX, OpSTQD, OpSTQX, OpSHUFB, OpROTQBY, OpROTQBYI,
		OpBR, OpBRZ, OpBRNZ, OpLNOP, OpSTOP:
		return Odd
	default:
		return Even
	}
}

// Latency returns result latency in cycles (cycles until a dependent
// instruction can issue). These are the published SPU numbers: simple
// fixed point 2, word shifts/rotates 4, loads 6, quadword
// shuffles/rotates 4.
func Latency(o Op) int {
	switch o {
	case OpLQD, OpLQX:
		return 6
	case OpSHLI, OpROTMI:
		return 4
	case OpSHUFB, OpROTQBY, OpROTQBYI:
		return 4
	case OpSTQD, OpSTQX, OpBR, OpBRZ, OpBRNZ, OpNOP, OpLNOP, OpSTOP:
		return 1
	default:
		return 2
	}
}

// IsBranch reports whether the opcode is a control transfer.
func IsBranch(o Op) bool { return o == OpBR || o == OpBRZ || o == OpBRNZ }

// Instr is one decoded instruction. Rt is the destination except for
// stores and conditional branches, where it is a source.
type Instr struct {
	Op     Op
	Rt     uint8
	Ra     uint8
	Rb     uint8
	Rc     uint8
	Imm    int32
	Target int32 // branch target: instruction index
	Hinted bool  // branch prepared by an hbr hint (no flush penalty)
}

// Sources returns the registers read by the instruction.
func (in Instr) Sources() []uint8 {
	switch in.Op {
	case OpIL, OpILHU, OpILA, OpNOP, OpLNOP, OpBR, OpSTOP:
		return nil
	case OpIOHL:
		return []uint8{in.Rt}
	case OpAI, OpANDI, OpANDBI, OpORI, OpSHLI, OpROTMI, OpCEQI, OpROTQBYI:
		return []uint8{in.Ra}
	case OpLQD:
		return []uint8{in.Ra}
	case OpLQX:
		return []uint8{in.Ra, in.Rb}
	case OpSTQD:
		return []uint8{in.Rt, in.Ra}
	case OpSTQX:
		return []uint8{in.Rt, in.Ra, in.Rb}
	case OpSHUFB:
		return []uint8{in.Ra, in.Rb, in.Rc}
	case OpBRZ, OpBRNZ:
		return []uint8{in.Rt}
	default: // two-operand register forms
		return []uint8{in.Ra, in.Rb}
	}
}

// Writes returns the destination register, or -1 if none.
func (in Instr) Writes() int {
	switch in.Op {
	case OpSTQD, OpSTQX, OpBR, OpBRZ, OpBRNZ, OpNOP, OpLNOP, OpSTOP:
		return -1
	default:
		return int(in.Rt)
	}
}

func (in Instr) String() string {
	switch in.Op {
	case OpIL, OpILHU, OpILA:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rt, in.Imm)
	case OpIOHL:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rt, in.Imm)
	case OpAI, OpANDI, OpANDBI, OpORI, OpSHLI, OpROTMI, OpCEQI, OpROTQBYI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rt, in.Ra, in.Imm)
	case OpLQD, OpSTQD:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rt, in.Imm, in.Ra)
	case OpLQX, OpSTQX:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rt, in.Ra, in.Rb)
	case OpSHUFB:
		return fmt.Sprintf("%s r%d, r%d, r%d, r%d", in.Op, in.Rt, in.Ra, in.Rb, in.Rc)
	case OpBR:
		return fmt.Sprintf("%s %d", in.Op, in.Target)
	case OpBRZ, OpBRNZ:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rt, in.Target)
	case OpNOP, OpLNOP, OpSTOP:
		return in.Op.String()
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rt, in.Ra, in.Rb)
	}
}

// Program is an executable instruction sequence with metadata the
// profiler reports (Table 1's "registers used" row comes from here).
type Program struct {
	Code []Instr
	// RegsUsed is the number of distinct architectural registers the
	// program touches.
	RegsUsed int
	// Spills counts register-allocator spill slots (V5's "spill" row).
	Spills int
	// Name describes the kernel for reports.
	Name string
}

// CountRegs recomputes RegsUsed by scanning the code.
func (p *Program) CountRegs() int {
	var used [128]bool
	for _, in := range p.Code {
		if w := in.Writes(); w >= 0 {
			used[w] = true
		}
		for _, s := range in.Sources() {
			used[s] = true
		}
	}
	n := 0
	for _, u := range used {
		if u {
			n++
		}
	}
	p.RegsUsed = n
	return n
}

// Validate checks branch targets and register indices.
func (p *Program) Validate() error {
	for i, in := range p.Code {
		if in.Op < 0 || in.Op >= opCount {
			return fmt.Errorf("spu: instruction %d: bad opcode %d", i, in.Op)
		}
		if IsBranch(in.Op) {
			if in.Target < 0 || int(in.Target) >= len(p.Code) {
				return fmt.Errorf("spu: instruction %d: branch target %d out of range", i, in.Target)
			}
		}
		if in.Rt > 127 || in.Ra > 127 || in.Rb > 127 || in.Rc > 127 {
			return fmt.Errorf("spu: instruction %d: register out of range", i)
		}
	}
	return nil
}
