package spu

import (
	"fmt"
	"strings"
)

// Listing renders the program as an annotated assembly listing: index,
// pipeline, latency and disassembly, with branch targets marked. This
// is the kernel dump developers inspect when tuning (and what
// cmd/paperbench's Figure 4 view summarizes).
func (p *Program) Listing() string {
	targets := map[int32]bool{}
	for _, in := range p.Code {
		if IsBranch(in.Op) {
			targets[in.Target] = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; %s: %d instructions, %d registers",
		p.Name, len(p.Code), p.RegsUsed)
	if p.Spills > 0 {
		fmt.Fprintf(&b, ", %d spills", p.Spills)
	}
	b.WriteByte('\n')
	for i, in := range p.Code {
		mark := "  "
		if targets[int32(i)] {
			mark = "L:"
		}
		pipe := "e"
		if PipeOf(in.Op) == Odd {
			pipe = "o"
		}
		fmt.Fprintf(&b, "%s%5d  [%s%d] %s\n", mark, i, pipe, Latency(in.Op), in.String())
	}
	return b.String()
}

// Stats summarizes a program's static properties.
type StaticStats struct {
	Instructions int
	EvenPipe     int
	OddPipe      int
	Branches     int
	Loads        int
	Stores       int
}

// StaticStatsOf tallies the static instruction classes.
func StaticStatsOf(p *Program) StaticStats {
	var s StaticStats
	for _, in := range p.Code {
		s.Instructions++
		if PipeOf(in.Op) == Even {
			s.EvenPipe++
		} else {
			s.OddPipe++
		}
		switch {
		case IsBranch(in.Op):
			s.Branches++
		case in.Op == OpLQD || in.Op == OpLQX:
			s.Loads++
		case in.Op == OpSTQD || in.Op == OpSTQX:
			s.Stores++
		}
	}
	return s
}
