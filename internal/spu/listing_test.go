package spu

import (
	"strings"
	"testing"
)

// listingProgram is a tiny kernel exercising every class the listing
// and the static tally distinguish: both pipelines, a branch with its
// target, a load, and a store.
func listingProgram() *Program {
	return &Program{
		Name:     "listing-probe",
		RegsUsed: 4,
		Spills:   1,
		Code: []Instr{
			{Op: OpAI, Rt: 1, Ra: 0, Imm: 8}, // even pipe
			{Op: OpLQD, Rt: 2, Ra: 1},        // odd pipe, load
			{Op: OpA, Rt: 3, Ra: 2, Rb: 1},
			{Op: OpSTQD, Rt: 3, Ra: 1}, // store
			{Op: OpBRZ, Rt: 3, Target: 1},
			{Op: OpSTOP},
		},
	}
}

func TestListing(t *testing.T) {
	out := listingProgram().Listing()
	if !strings.Contains(out, "listing-probe: 6 instructions, 4 registers, 1 spills") {
		t.Fatalf("header wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // header + 6 instructions
		t.Fatalf("listing has %d lines, want 7:\n%s", len(lines), out)
	}
	// The branch target (instruction 1, the lqd) is marked L:, and only
	// that one.
	var marked []string
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "L:") {
			marked = append(marked, l)
		}
	}
	if len(marked) != 1 || !strings.Contains(marked[0], "lqd") {
		t.Fatalf("branch-target marks wrong: %q\n%s", marked, out)
	}
	// Pipeline annotations: the arithmetic rows are even [e...], the
	// load/store rows odd [o...].
	if !strings.Contains(lines[1], "[e") || !strings.Contains(lines[2], "[o") {
		t.Fatalf("pipeline annotations wrong:\n%s", out)
	}
}

func TestListingOmitsZeroSpills(t *testing.T) {
	p := listingProgram()
	p.Spills = 0
	if out := p.Listing(); strings.Contains(out, "spills") {
		t.Fatalf("spill-free program mentions spills:\n%s", out)
	}
}

func TestStaticStatsOf(t *testing.T) {
	s := StaticStatsOf(listingProgram())
	if s.Instructions != 6 {
		t.Fatalf("Instructions = %d", s.Instructions)
	}
	if s.EvenPipe+s.OddPipe != s.Instructions {
		t.Fatalf("pipes do not partition: even=%d odd=%d", s.EvenPipe, s.OddPipe)
	}
	if s.Branches != 1 || s.Loads != 1 || s.Stores != 1 {
		t.Fatalf("class tally wrong: %+v", s)
	}
}
