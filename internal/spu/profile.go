package spu

import "fmt"

// ClockHz is the Cell SPU clock the paper measures against.
const ClockHz = 3.2e9

// Profile accumulates the execution metrics Table 1 reports.
type Profile struct {
	Cycles        int64
	Instructions  int64
	DualCycles    int64 // cycles that issued two instructions
	SingleCycles  int64 // cycles that issued one
	StallCycles   int64 // cycles that issued none (dependency or flush)
	BranchFlushes int64
	Loads         int64
	Stores        int64
}

// CPI is clock cycles per instruction (Table 1 "Average CPI").
func (p Profile) CPI() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return float64(p.Cycles) / float64(p.Instructions)
}

// DualIssuePct is the percentage of cycles that dual-issued
// (Table 1 "Dual issue %").
func (p Profile) DualIssuePct() float64 {
	if p.Cycles == 0 {
		return 0
	}
	return 100 * float64(p.DualCycles) / float64(p.Cycles)
}

// StallPct is the percentage of cycles with no issue
// (Table 1 "Stall %").
func (p Profile) StallPct() float64 {
	if p.Cycles == 0 {
		return 0
	}
	return 100 * float64(p.StallCycles) / float64(p.Cycles)
}

// CyclesPer divides total cycles over n actions (Table 1 "Clock cycles
// per DFA transition" with n = state transitions).
func (p Profile) CyclesPer(n int64) float64 {
	if n == 0 {
		return 0
	}
	return float64(p.Cycles) / float64(n)
}

// TransitionsPerSecond converts a per-transition cycle cost into
// throughput at the SPU clock (Table 1 "Throughput (M transitions/s)").
func TransitionsPerSecond(cyclesPerTransition float64) float64 {
	if cyclesPerTransition == 0 {
		return 0
	}
	return ClockHz / cyclesPerTransition
}

// ThroughputGbps converts a per-transition cycle cost into filtered
// input bandwidth: one transition consumes one input byte = 8 bits
// (Table 1 "Throughput (Gbps)").
func ThroughputGbps(cyclesPerTransition float64) float64 {
	return TransitionsPerSecond(cyclesPerTransition) * 8 / 1e9
}

// Check verifies the internal accounting identity:
// cycles = dual + single + stall.
func (p Profile) Check() error {
	if got := p.DualCycles + p.SingleCycles + p.StallCycles; got != p.Cycles {
		return fmt.Errorf("spu: cycle accounting broken: %d+%d+%d != %d",
			p.DualCycles, p.SingleCycles, p.StallCycles, p.Cycles)
	}
	if got := 2*p.DualCycles + p.SingleCycles; got != p.Instructions {
		return fmt.Errorf("spu: instruction accounting broken: %d != %d", got, p.Instructions)
	}
	return nil
}

func (p Profile) String() string {
	return fmt.Sprintf("cycles=%d instr=%d CPI=%.2f dual=%.1f%% stall=%.1f%%",
		p.Cycles, p.Instructions, p.CPI(), p.DualIssuePct(), p.StallPct())
}
