package spu

import (
	"strings"
	"testing"
)

func TestProfileCyclesPerAndString(t *testing.T) {
	p := Profile{Cycles: 100, Instructions: 60, DualCycles: 20, SingleCycles: 20, StallCycles: 60}
	if got := p.CyclesPer(50); got != 2.0 {
		t.Fatalf("CyclesPer(50) = %v", got)
	}
	if got := p.CyclesPer(0); got != 0 {
		t.Fatalf("CyclesPer(0) = %v", got)
	}
	s := p.String()
	for _, frag := range []string{"cycles=100", "instr=60", "CPI="} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}
