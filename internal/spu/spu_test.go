package spu

import (
	"testing"

	"cellmatch/internal/v128"
)

// run assembles and executes code on a fresh CPU, failing on error.
func run(t *testing.T, code []Instr) *CPU {
	t.Helper()
	c := New()
	p := &Program{Code: code, Name: "test"}
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Prof.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConstantFormation(t *testing.T) {
	c := run(t, []Instr{
		{Op: OpIL, Rt: 1, Imm: -5},
		{Op: OpILHU, Rt: 2, Imm: 0x1234},
		{Op: OpIOHL, Rt: 2, Imm: 0x5678},
		{Op: OpILA, Rt: 3, Imm: 0x3FFFF},
		{Op: OpSTOP},
	})
	if c.R[1].Word(0) != 0xFFFFFFFB || c.R[1].Word(3) != 0xFFFFFFFB {
		t.Fatalf("il: %v", c.R[1])
	}
	if c.R[2].Word(0) != 0x12345678 {
		t.Fatalf("ilhu/iohl: %v", c.R[2])
	}
	if c.R[3].Word(0) != 0x3FFFF {
		t.Fatalf("ila: %v", c.R[3])
	}
}

func TestArithmeticAndLogic(t *testing.T) {
	c := run(t, []Instr{
		{Op: OpIL, Rt: 1, Imm: 100},
		{Op: OpIL, Rt: 2, Imm: 28},
		{Op: OpA, Rt: 3, Ra: 1, Rb: 2},       // 128
		{Op: OpAI, Rt: 4, Ra: 3, Imm: -1},    // 127
		{Op: OpSF, Rt: 5, Ra: 2, Rb: 1},      // rb - ra = 72
		{Op: OpAND, Rt: 6, Ra: 3, Rb: 4},     // 128 & 127 = 0
		{Op: OpANDI, Rt: 7, Ra: 4, Imm: 0xF}, // 127 & 15 = 15
		{Op: OpOR, Rt: 8, Ra: 3, Rb: 4},      // 255
		{Op: OpXOR, Rt: 9, Ra: 8, Rb: 4},     // 128
		{Op: OpANDC, Rt: 10, Ra: 8, Rb: 4},   // 255 &^ 127 = 128
		{Op: OpSTOP},
	})
	want := map[uint8]uint32{3: 128, 4: 127, 5: 72, 6: 0, 7: 15, 8: 255, 9: 128, 10: 128}
	for r, w := range want {
		if c.R[r].Word(0) != w {
			t.Errorf("r%d = %d, want %d", r, c.R[r].Word(0), w)
		}
	}
}

func TestShifts(t *testing.T) {
	c := run(t, []Instr{
		{Op: OpIL, Rt: 1, Imm: 0x0F0F},
		{Op: OpSHLI, Rt: 2, Ra: 1, Imm: 4},
		{Op: OpROTMI, Rt: 3, Ra: 2, Imm: 8},
		{Op: OpSTOP},
	})
	if c.R[2].Word(0) != 0xF0F0 {
		t.Fatalf("shli: %08x", c.R[2].Word(0))
	}
	if c.R[3].Word(0) != 0xF0 {
		t.Fatalf("rotmi: %08x", c.R[3].Word(0))
	}
}

func TestANDBIPerByte(t *testing.T) {
	c := New()
	c.R[1] = v128.FromWords(0x11223344, 0xFFFFFFFF, 0, 0xABCDEF01)
	p := &Program{Code: []Instr{
		{Op: OpANDBI, Rt: 2, Ra: 1, Imm: 0xF0},
		{Op: OpSTOP},
	}}
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if c.R[2].Word(0) != 0x10203040 || c.R[2].Word(1) != 0xF0F0F0F0 {
		t.Fatalf("andbi: %v", c.R[2])
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	c := New()
	for i := 0; i < 32; i++ {
		c.LS[4096+i] = byte(i + 1)
	}
	p := &Program{Code: []Instr{
		{Op: OpILA, Rt: 1, Imm: 4096},
		{Op: OpLQD, Rt: 2, Ra: 1, Imm: 0},
		{Op: OpLQD, Rt: 3, Ra: 1, Imm: 16},
		{Op: OpSTQD, Rt: 2, Ra: 1, Imm: 32},
		{Op: OpSTOP},
	}}
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if c.R[2].Word(0) != 0x01020304 {
		t.Fatalf("lqd word0: %08x", c.R[2].Word(0))
	}
	if c.R[3][0] != 17 {
		t.Fatalf("second quadword: %v", c.R[3])
	}
	got := c.ReadLS(4096+32, 16)
	if got[0] != 1 || got[15] != 16 {
		t.Fatalf("stqd: %v", got)
	}
}

func TestLoadUnalignedTruncates(t *testing.T) {
	// lqd masks the low 4 address bits, like silicon.
	c := New()
	c.LS[0] = 0xAA
	p := &Program{Code: []Instr{
		{Op: OpILA, Rt: 1, Imm: 7},
		{Op: OpLQD, Rt: 2, Ra: 1, Imm: 0},
		{Op: OpSTOP},
	}}
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if c.R[2][0] != 0xAA {
		t.Fatal("address not truncated to quadword boundary")
	}
}

func TestLQXIndexed(t *testing.T) {
	c := New()
	c.LS[8192] = 0x42
	p := &Program{Code: []Instr{
		{Op: OpILA, Rt: 1, Imm: 8000},
		{Op: OpILA, Rt: 2, Imm: 192},
		{Op: OpLQX, Rt: 3, Ra: 1, Rb: 2},
		{Op: OpSTOP},
	}}
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if c.R[3][0] != 0x42 {
		t.Fatalf("lqx: %v", c.R[3])
	}
}

func TestRotqbyAndShufb(t *testing.T) {
	c := New()
	for i := 0; i < 16; i++ {
		c.LS[i] = byte(i)
	}
	c.R[10] = v128.SplatByte(0x03) // shuffle pattern: select byte 3 of ra
	p := &Program{Code: []Instr{
		{Op: OpILA, Rt: 1, Imm: 0},
		{Op: OpLQD, Rt: 2, Ra: 1, Imm: 0},
		{Op: OpROTQBYI, Rt: 3, Ra: 2, Imm: 5},
		{Op: OpILA, Rt: 4, Imm: 2},
		{Op: OpROTQBY, Rt: 5, Ra: 2, Rb: 4},
		{Op: OpSHUFB, Rt: 6, Ra: 2, Rb: 2, Rc: 10},
		{Op: OpSTOP},
	}}
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if c.R[3][0] != 5 {
		t.Fatalf("rotqbyi: %v", c.R[3])
	}
	if c.R[5][0] != 2 {
		t.Fatalf("rotqby: %v", c.R[5])
	}
	if c.R[6] != v128.SplatByte(3) {
		t.Fatalf("shufb: %v", c.R[6])
	}
}

func TestCompareAndBranchLoop(t *testing.T) {
	// Count down from 5: r1 = 5; loop { r2++; r1--; brnz r1 }.
	code := []Instr{
		{Op: OpIL, Rt: 1, Imm: 5},
		{Op: OpIL, Rt: 2, Imm: 0},
		{Op: OpAI, Rt: 2, Ra: 2, Imm: 1}, // 2: loop body
		{Op: OpAI, Rt: 1, Ra: 1, Imm: -1},
		{Op: OpBRNZ, Rt: 1, Target: 2, Hinted: true},
		{Op: OpSTOP},
	}
	c := run(t, code)
	if c.R[2].Word(0) != 5 {
		t.Fatalf("loop ran %d times", c.R[2].Word(0))
	}
}

func TestCEQProducesMask(t *testing.T) {
	c := run(t, []Instr{
		{Op: OpIL, Rt: 1, Imm: 7},
		{Op: OpIL, Rt: 2, Imm: 7},
		{Op: OpCEQ, Rt: 3, Ra: 1, Rb: 2},
		{Op: OpCEQI, Rt: 4, Ra: 1, Imm: 8},
		{Op: OpSTOP},
	})
	if c.R[3].Word(0) != 0xFFFFFFFF {
		t.Fatalf("ceq: %v", c.R[3])
	}
	if c.R[4].Word(0) != 0 {
		t.Fatalf("ceqi: %v", c.R[4])
	}
}

// --- Timing model tests ---

func TestDependentChainStalls(t *testing.T) {
	// 20 dependent adds: each waits 2 cycles for the previous result,
	// so CPI approaches 2 and stalls approach 50%.
	var code []Instr
	code = append(code, Instr{Op: OpIL, Rt: 1, Imm: 1})
	for i := 0; i < 20; i++ {
		code = append(code, Instr{Op: OpA, Rt: 1, Ra: 1, Rb: 1})
	}
	code = append(code, Instr{Op: OpSTOP})
	c := run(t, code)
	cpi := c.Prof.CPI()
	if cpi < 1.7 || cpi > 2.2 {
		t.Fatalf("dependent chain CPI = %.2f, want ~2", cpi)
	}
	if c.Prof.StallPct() < 35 {
		t.Fatalf("stall%% = %.1f, want ~50", c.Prof.StallPct())
	}
}

func TestIndependentSingleIssue(t *testing.T) {
	// Independent even-pipe instructions issue one per cycle (no
	// pairing possible: both would need the odd pipe for the second).
	var code []Instr
	for i := 0; i < 20; i++ {
		code = append(code, Instr{Op: OpIL, Rt: uint8(1 + i%100), Imm: int32(i)})
	}
	code = append(code, Instr{Op: OpSTOP})
	c := run(t, code)
	if cpi := c.Prof.CPI(); cpi < 0.95 || cpi > 1.1 {
		t.Fatalf("independent even CPI = %.2f, want 1", cpi)
	}
	if c.Prof.DualCycles != 0 {
		t.Fatalf("even-only code dual-issued %d times", c.Prof.DualCycles)
	}
}

func TestDualIssueAlternating(t *testing.T) {
	// Independent even/odd alternation dual-issues every cycle:
	// CPI -> 0.5, dual% -> 100.
	var code []Instr
	for i := 0; i < 20; i++ {
		code = append(code, Instr{Op: OpIL, Rt: uint8(2 * (i + 1)), Imm: 1})
		code = append(code, Instr{Op: OpROTQBYI, Rt: uint8(2*(i+1) + 1), Ra: 0, Imm: 1})
	}
	code = append(code, Instr{Op: OpSTOP})
	c := run(t, code)
	if cpi := c.Prof.CPI(); cpi > 0.6 {
		t.Fatalf("alternating CPI = %.2f, want ~0.5", cpi)
	}
	if c.Prof.DualIssuePct() < 90 {
		t.Fatalf("dual%% = %.1f, want ~100", c.Prof.DualIssuePct())
	}
}

func TestPairHazardBlocksDual(t *testing.T) {
	// The odd instruction reads the even instruction's result: no dual.
	code := []Instr{
		{Op: OpILA, Rt: 1, Imm: 64},
		{Op: OpLNOP},
		{Op: OpAI, Rt: 2, Ra: 1, Imm: 0},  // even slot (index 2)
		{Op: OpLQD, Rt: 3, Ra: 2, Imm: 0}, // odd slot reads r2
		{Op: OpSTOP},
	}
	c := run(t, code)
	if c.Prof.DualCycles != 1 { // only the first pair (ILA+LNOP) pairs
		t.Fatalf("dual cycles = %d, want 1", c.Prof.DualCycles)
	}
}

func TestBranchPenaltyUnhinted(t *testing.T) {
	mk := func(hinted bool) int64 {
		code := []Instr{
			{Op: OpIL, Rt: 1, Imm: 50},
			{Op: OpAI, Rt: 1, Ra: 1, Imm: -1},
			{Op: OpBRNZ, Rt: 1, Target: 1, Hinted: hinted},
			{Op: OpSTOP},
		}
		c := New()
		if err := c.Run(&Program{Code: code}); err != nil {
			panic(err)
		}
		return c.Prof.Cycles
	}
	hinted := mk(true)
	unhinted := mk(false)
	if unhinted <= hinted {
		t.Fatalf("unhinted (%d) not slower than hinted (%d)", unhinted, hinted)
	}
	// 49 taken branches at 18 cycles each.
	if diff := unhinted - hinted; diff < 49*15 || diff > 49*20 {
		t.Fatalf("penalty difference = %d, want ~%d", diff, 49*18)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	c := New()
	if err := c.Run(&Program{Code: []Instr{{Op: OpBR, Target: 99}}}); err == nil {
		t.Fatal("wild branch accepted")
	}
	if err := c.Run(&Program{Code: []Instr{{Op: OpA, Rt: 200}}}); err == nil {
		t.Fatal("bad register accepted")
	}
}

func TestInstructionLimit(t *testing.T) {
	c := New()
	c.Params.MaxInstructions = 100
	// Infinite loop.
	err := c.Run(&Program{Code: []Instr{
		{Op: OpBR, Target: 0, Hinted: true},
		{Op: OpSTOP},
	}})
	if err == nil {
		t.Fatal("runaway loop not stopped")
	}
}

func TestCountRegs(t *testing.T) {
	p := &Program{Code: []Instr{
		{Op: OpIL, Rt: 1, Imm: 0},
		{Op: OpIL, Rt: 2, Imm: 0},
		{Op: OpA, Rt: 3, Ra: 1, Rb: 2},
		{Op: OpSTOP},
	}}
	if p.CountRegs() != 3 {
		t.Fatalf("regs = %d", p.RegsUsed)
	}
}

func TestProfileMetricsArithmetic(t *testing.T) {
	p := Profile{Cycles: 100, Instructions: 150, DualCycles: 50, SingleCycles: 50}
	if p.CPI() < 0.66 || p.CPI() > 0.67 {
		t.Fatalf("CPI = %f", p.CPI())
	}
	if p.DualIssuePct() != 50 {
		t.Fatalf("dual%% = %f", p.DualIssuePct())
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	bad := Profile{Cycles: 10, Instructions: 3, SingleCycles: 2}
	if bad.Check() == nil {
		t.Fatal("broken accounting accepted")
	}
}

func TestThroughputConversion(t *testing.T) {
	// The paper's V4: 5.01 cycles/transition -> 639 M transitions/s
	// -> 5.11 Gbps at 3.2 GHz.
	mt := TransitionsPerSecond(5.01) / 1e6
	if mt < 638 || mt > 640 {
		t.Fatalf("Mtransitions/s = %.2f, want ~639", mt)
	}
	gbps := ThroughputGbps(5.01)
	if gbps < 5.10 || gbps > 5.12 {
		t.Fatalf("Gbps = %.3f, want 5.11", gbps)
	}
}

func TestWriteReadLS(t *testing.T) {
	c := New()
	c.WriteLS(100, []byte{1, 2, 3})
	got := c.ReadLS(100, 3)
	if got[0] != 1 || got[2] != 3 {
		t.Fatalf("LS round trip: %v", got)
	}
}

func TestResetKeepsLS(t *testing.T) {
	c := New()
	c.LS[5] = 9
	c.R[1] = v128.SplatByte(1)
	c.Prof.Cycles = 10
	c.Reset()
	if c.LS[5] != 9 {
		t.Fatal("reset cleared LS")
	}
	if c.R[1] != v128.Zero || c.Prof.Cycles != 0 {
		t.Fatal("reset did not clear registers/profile")
	}
}
