// Package spuasm is the kernel builder that plays the role GCC 4.0.2
// played for the paper's authors: it turns a symbolic instruction
// stream over unlimited virtual registers into an executable SPU
// program, by list-scheduling each basic block and then running a
// linear-scan register allocator that spills to the local store when
// the 128 architectural registers run out.
//
// Table 1's last rows ("Registers used": 4 / 40 / 81 / 124 / spill) are
// artifacts of exactly this pipeline, which is why the repository
// regenerates them mechanically instead of asserting them.
package spuasm

import (
	"fmt"

	"cellmatch/internal/spu"
)

// VReg is a virtual register id.
type VReg int32

const noReg VReg = -1

// vinst is an instruction over virtual registers.
type vinst struct {
	op     spu.Op
	rt     VReg
	ra     VReg
	rb     VReg
	rc     VReg
	imm    int32
	target string
	hinted bool
}

func (v vinst) sources() []VReg {
	var out []VReg
	add := func(r VReg) {
		if r != noReg {
			out = append(out, r)
		}
	}
	switch v.op {
	case spu.OpIL, spu.OpILHU, spu.OpILA, spu.OpNOP, spu.OpLNOP, spu.OpBR, spu.OpSTOP:
	case spu.OpIOHL:
		add(v.rt)
	case spu.OpAI, spu.OpANDI, spu.OpANDBI, spu.OpORI, spu.OpSHLI, spu.OpROTMI,
		spu.OpCEQI, spu.OpROTQBYI, spu.OpLQD:
		add(v.ra)
	case spu.OpLQX:
		add(v.ra)
		add(v.rb)
	case spu.OpSTQD:
		add(v.rt)
		add(v.ra)
	case spu.OpSTQX:
		add(v.rt)
		add(v.ra)
		add(v.rb)
	case spu.OpSHUFB:
		add(v.ra)
		add(v.rb)
		add(v.rc)
	case spu.OpBRZ, spu.OpBRNZ:
		add(v.rt)
	default:
		add(v.ra)
		add(v.rb)
	}
	return out
}

func (v vinst) dest() VReg {
	switch v.op {
	case spu.OpSTQD, spu.OpSTQX, spu.OpBR, spu.OpBRZ, spu.OpBRNZ,
		spu.OpNOP, spu.OpLNOP, spu.OpSTOP:
		return noReg
	default:
		return v.rt
	}
}

func (v vinst) isMem() bool {
	switch v.op {
	case spu.OpLQD, spu.OpLQX, spu.OpSTQD, spu.OpSTQX:
		return true
	}
	return false
}

func (v vinst) isStore() bool { return v.op == spu.OpSTQD || v.op == spu.OpSTQX }

// item is a label marker or an instruction.
type item struct {
	label string // nonempty for label markers
	in    vinst
}

// Builder accumulates symbolic code.
type Builder struct {
	items  []item
	nv     int32
	names  map[VReg]string
	labels map[string]bool
	err    error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{names: map[VReg]string{}, labels: map[string]bool{}}
}

// NewReg allocates a fresh virtual register with a debug name.
func (b *Builder) NewReg(name string) VReg {
	r := VReg(b.nv)
	b.nv++
	b.names[r] = name
	return r
}

// NewRegs allocates n fresh registers with indexed names.
func (b *Builder) NewRegs(prefix string, n int) []VReg {
	out := make([]VReg, n)
	for i := range out {
		out[i] = b.NewReg(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// Label places a branch target at the current position.
func (b *Builder) Label(name string) {
	if b.labels[name] {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = true
	b.items = append(b.items, item{label: name})
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("spuasm: "+format, args...)
	}
}

func (b *Builder) emit(v vinst) { b.items = append(b.items, item{in: v}) }

// --- instruction constructors ---

// IL loads a sign-extended 16-bit immediate into all words.
func (b *Builder) IL(rt VReg, imm int32) {
	b.emit(vinst{op: spu.OpIL, rt: rt, ra: noReg, rb: noReg, rc: noReg, imm: imm})
}

// ILA loads an 18-bit unsigned immediate (typically an LS address).
func (b *Builder) ILA(rt VReg, imm int32) {
	b.emit(vinst{op: spu.OpILA, rt: rt, ra: noReg, rb: noReg, rc: noReg, imm: imm})
}

// A adds words: rt = ra + rb.
func (b *Builder) A(rt, ra, rb VReg) {
	b.emit(vinst{op: spu.OpA, rt: rt, ra: ra, rb: rb, rc: noReg})
}

// AI adds an immediate: rt = ra + imm.
func (b *Builder) AI(rt, ra VReg, imm int32) {
	b.emit(vinst{op: spu.OpAI, rt: rt, ra: ra, rb: noReg, rc: noReg, imm: imm})
}

// AND performs rt = ra & rb.
func (b *Builder) AND(rt, ra, rb VReg) {
	b.emit(vinst{op: spu.OpAND, rt: rt, ra: ra, rb: rb, rc: noReg})
}

// ANDI performs rt = ra & signext(imm).
func (b *Builder) ANDI(rt, ra VReg, imm int32) {
	b.emit(vinst{op: spu.OpANDI, rt: rt, ra: ra, rb: noReg, rc: noReg, imm: imm})
}

// ANDBI performs a per-byte and with imm.
func (b *Builder) ANDBI(rt, ra VReg, imm int32) {
	b.emit(vinst{op: spu.OpANDBI, rt: rt, ra: ra, rb: noReg, rc: noReg, imm: imm})
}

// OR performs rt = ra | rb.
func (b *Builder) OR(rt, ra, rb VReg) {
	b.emit(vinst{op: spu.OpOR, rt: rt, ra: ra, rb: rb, rc: noReg})
}

// XOR performs rt = ra ^ rb.
func (b *Builder) XOR(rt, ra, rb VReg) {
	b.emit(vinst{op: spu.OpXOR, rt: rt, ra: ra, rb: rb, rc: noReg})
}

// SHLI shifts words left by an immediate.
func (b *Builder) SHLI(rt, ra VReg, imm int32) {
	b.emit(vinst{op: spu.OpSHLI, rt: rt, ra: ra, rb: noReg, rc: noReg, imm: imm})
}

// ROTMI shifts words right (logical) by an immediate.
func (b *Builder) ROTMI(rt, ra VReg, imm int32) {
	b.emit(vinst{op: spu.OpROTMI, rt: rt, ra: ra, rb: noReg, rc: noReg, imm: imm})
}

// CEQI compares words to an immediate for equality.
func (b *Builder) CEQI(rt, ra VReg, imm int32) {
	b.emit(vinst{op: spu.OpCEQI, rt: rt, ra: ra, rb: noReg, rc: noReg, imm: imm})
}

// LQD loads the quadword at (ra)+imm.
func (b *Builder) LQD(rt, ra VReg, imm int32) {
	b.emit(vinst{op: spu.OpLQD, rt: rt, ra: ra, rb: noReg, rc: noReg, imm: imm})
}

// LQX loads the quadword at (ra)+(rb).
func (b *Builder) LQX(rt, ra, rb VReg) {
	b.emit(vinst{op: spu.OpLQX, rt: rt, ra: ra, rb: rb, rc: noReg})
}

// STQD stores rt's quadword to (ra)+imm.
func (b *Builder) STQD(rt, ra VReg, imm int32) {
	b.emit(vinst{op: spu.OpSTQD, rt: rt, ra: ra, rb: noReg, rc: noReg, imm: imm})
}

// SHUFB shuffles bytes of ra||rb under pattern rc.
func (b *Builder) SHUFB(rt, ra, rb, rc VReg) {
	b.emit(vinst{op: spu.OpSHUFB, rt: rt, ra: ra, rb: rb, rc: rc})
}

// ROTQBY rotates quadword ra left by (rb)&15 bytes.
func (b *Builder) ROTQBY(rt, ra, rb VReg) {
	b.emit(vinst{op: spu.OpROTQBY, rt: rt, ra: ra, rb: rb, rc: noReg})
}

// ROTQBYI rotates quadword ra left by imm&15 bytes.
func (b *Builder) ROTQBYI(rt, ra VReg, imm int32) {
	b.emit(vinst{op: spu.OpROTQBYI, rt: rt, ra: ra, rb: noReg, rc: noReg, imm: imm})
}

// BR branches unconditionally to a label.
func (b *Builder) BR(label string, hinted bool) {
	b.emit(vinst{op: spu.OpBR, rt: noReg, ra: noReg, rb: noReg, rc: noReg, target: label, hinted: hinted})
}

// BRNZ branches to label when rt's preferred word is nonzero.
func (b *Builder) BRNZ(rt VReg, label string, hinted bool) {
	b.emit(vinst{op: spu.OpBRNZ, rt: rt, ra: noReg, rb: noReg, rc: noReg, target: label, hinted: hinted})
}

// BRZ branches to label when rt's preferred word is zero.
func (b *Builder) BRZ(rt VReg, label string, hinted bool) {
	b.emit(vinst{op: spu.OpBRZ, rt: rt, ra: noReg, rb: noReg, rc: noReg, target: label, hinted: hinted})
}

// STOP halts the program.
func (b *Builder) STOP() { b.emit(vinst{op: spu.OpSTOP, rt: noReg, ra: noReg, rb: noReg, rc: noReg}) }

// Options configure assembly.
type Options struct {
	// Window is the list scheduler's lookahead (in instructions of
	// original program order) within a basic block. It models how much
	// independent work the compiler exposes: small windows behave like
	// unscheduled code, large windows like an aggressively scheduled
	// unrolled body. Zero means no scheduling (program order).
	Window int
	// MaxRegs is the number of allocatable architectural registers.
	// Default 112: of the 128 registers, the ABI fixes the link
	// register and stack pointer, the kernel keeps mask constants and
	// loop invariants resident, the allocator reserves spill
	// temporaries and the spill base pointer, and GCC-era register
	// allocation carries a few registers of slack — the same budget
	// the paper's compiler worked with when its unroll-by-4 version
	// started spilling. Values up to 125 may be forced explicitly.
	MaxRegs int
	// SpillBase is the local-store address of the spill area.
	SpillBase uint32
	// Name labels the resulting program.
	Name string
}

// reserved physical registers when spilling is needed.
const (
	tempReg0     = 125
	tempReg1     = 126
	spillBaseReg = 127
)

// Assemble schedules, allocates and emits the final program.
func (b *Builder) Assemble(opts Options) (*spu.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if opts.MaxRegs <= 0 {
		opts.MaxRegs = 112
	}
	if opts.MaxRegs > 125 {
		opts.MaxRegs = 125
	}
	// Verify labels referenced exist.
	for _, it := range b.items {
		if it.label == "" && it.in.target != "" && !b.labels[it.in.target] {
			return nil, fmt.Errorf("spuasm: undefined label %q", it.in.target)
		}
	}
	items := scheduleItems(b.items, opts.Window)
	asgn, spills, err := allocate(items, int(b.nv), opts.MaxRegs)
	if err != nil {
		return nil, err
	}
	prog, err := emitFinal(items, asgn, spills, opts)
	if err != nil {
		return nil, err
	}
	prog.Name = opts.Name
	prog.CountRegs()
	if spills > 0 {
		// The spill machinery occupies the reserved registers.
		prog.Spills = spills
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}
