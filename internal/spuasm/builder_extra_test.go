package spuasm

import (
	"testing"

	"cellmatch/internal/spu"
)

// Exercise the constructors the main suite's programs never reach:
// byte-wise AND, compare-to-immediate, indexed and displacement loads,
// shuffles, quadword rotates, and the unconditional/zero branches.
func TestBuilderFullConstructorSurface(t *testing.T) {
	b := NewBuilder()
	regs := b.NewRegs("r", 4)
	base, scratch := regs[0], regs[1]

	// Store a known quadword at 512, then read it back both ways.
	b.IL(scratch, 0x11)
	b.ILA(base, 512)
	b.STQD(scratch, base, 0)
	ld := b.NewReg("ld")
	b.LQD(ld, base, 0)
	off := b.NewReg("off")
	b.IL(off, 0)
	lx := b.NewReg("lx")
	b.LQX(lx, base, off)

	// Mask and compare: (0x11 & 0x0F) == 1? CEQI against 0x00000011.
	masked := b.NewReg("masked")
	b.ANDBI(masked, ld, 0x0F)
	eq := b.NewReg("eq")
	b.CEQI(eq, ld, 0x00000011)

	// Shuffle bytes of ld||lx under an identity-of-ra pattern built by
	// rotates (any deterministic pattern works; semantics are checked
	// by the spu package's own opcode tests — here we only need the
	// constructors to emit and schedule).
	pat := b.NewReg("pat")
	b.IL(pat, 0x03020100)
	sh := b.NewReg("sh")
	b.SHUFB(sh, ld, lx, pat)
	rot := b.NewReg("rot")
	b.ROTQBYI(rot, sh, 4)
	amt := b.NewReg("amt")
	b.IL(amt, 2)
	rot2 := b.NewReg("rot2")
	b.ROTQBY(rot2, rot, amt)

	// Branch skeleton: BR over a poison write, BRZ (taken: eq word 0 of
	// the comparison mask against a non-matching word is zero) over
	// another.
	b.BR("past", false)
	b.IL(scratch, -1)
	b.Label("past")
	zero := b.NewReg("zero")
	b.IL(zero, 0)
	b.BRZ(zero, "end", false)
	b.IL(scratch, -2)
	b.Label("end")
	storeResult(b, masked, 1024)
	b.STOP()

	c, p := execute(t, b, Options{Name: "surface", Window: 8})
	if got := c.ReadLS(1024, 16); got[15] != 0x01 {
		t.Fatalf("masked low byte = %#x, want 0x01", got[15])
	}
	if p.RegsUsed == 0 {
		t.Fatal("program reports zero registers")
	}
	st := spu.StaticStatsOf(p)
	if st.Branches < 2 || st.Loads < 2 || st.Stores < 2 {
		t.Fatalf("constructor surface missing classes: %+v", st)
	}
}
