package spuasm

import (
	"fmt"
	"math/rand"
	"testing"

	"cellmatch/internal/spu"
)

// randomProgram builds a random straight-line computation over nv
// virtual registers feeding a single result, optionally wrapped in a
// loop. It exercises every register-to-register opcode the kernels
// use, so scheduling and allocation bugs that alter semantics surface
// as result mismatches across configurations.
func randomProgram(rng *rand.Rand, loop bool) (*Builder, int) {
	b := NewBuilder()
	n := 8 + rng.Intn(24)
	regs := make([]VReg, n)
	for i := range regs {
		regs[i] = b.NewReg(fmt.Sprintf("r%d", i))
		b.IL(regs[i], int32(rng.Intn(200)-100))
	}
	emit := func(count int) {
		for k := 0; k < count; k++ {
			rt := regs[rng.Intn(n)]
			ra := regs[rng.Intn(n)]
			rb := regs[rng.Intn(n)]
			switch rng.Intn(8) {
			case 0:
				b.A(rt, ra, rb)
			case 1:
				b.AND(rt, ra, rb)
			case 2:
				b.OR(rt, ra, rb)
			case 3:
				b.XOR(rt, ra, rb)
			case 4:
				b.AI(rt, ra, int32(rng.Intn(64)-32))
			case 5:
				b.SHLI(rt, ra, int32(rng.Intn(8)))
			case 6:
				b.ROTMI(rt, ra, int32(rng.Intn(8)))
			case 7:
				b.ANDI(rt, ra, int32(rng.Intn(512)-256))
			}
		}
	}
	if loop {
		i := b.NewReg("i")
		b.IL(i, int32(2+rng.Intn(4)))
		b.Label("loop")
		emit(10 + rng.Intn(20))
		b.AI(i, i, -1)
		b.BRNZ(i, "loop", true)
	} else {
		emit(20 + rng.Intn(40))
	}
	// Fold everything into regs[0] so the result depends on all regs.
	for i := 1; i < n; i++ {
		b.XOR(regs[0], regs[0], regs[i])
	}
	out := b.NewReg("out")
	b.ILA(out, 2048)
	b.STQD(regs[0], out, 0)
	b.STOP()
	return b, n
}

// runConfig assembles with the given options and returns the stored
// result word.
func runConfig(t *testing.T, build func() *Builder, opts Options) uint32 {
	t.Helper()
	p, err := build().Assemble(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := spu.New()
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Prof.Check(); err != nil {
		t.Fatal(err)
	}
	q := c.ReadLS(2048, 4)
	return uint32(q[0])<<24 | uint32(q[1])<<16 | uint32(q[2])<<8 | uint32(q[3])
}

// TestRandomProgramsConfigInvariant: for random programs, every
// combination of scheduling window and register budget (including
// budgets small enough to force heavy spilling) computes the same
// result as the unscheduled, unconstrained baseline.
func TestRandomProgramsConfigInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		seed := rng.Int63()
		loop := trial%3 == 0
		build := func() *Builder {
			b, _ := randomProgram(rand.New(rand.NewSource(seed)), loop)
			return b
		}
		want := runConfig(t, build, Options{Window: 0, SpillBase: 16384})
		for _, opts := range []Options{
			{Window: 4, SpillBase: 16384},
			{Window: 16, SpillBase: 16384},
			{Window: 256, SpillBase: 16384},
			{Window: 0, MaxRegs: 8, SpillBase: 16384},
			{Window: 64, MaxRegs: 8, SpillBase: 16384},
			{Window: 64, MaxRegs: 12, SpillBase: 16384},
		} {
			got := runConfig(t, build, opts)
			if got != want {
				t.Fatalf("trial %d (seed %d, loop %v): window=%d maxregs=%d: got %#x want %#x",
					trial, seed, loop, opts.Window, opts.MaxRegs, got, want)
			}
		}
	}
}

// TestSpilledProgramsReportSpills verifies the spill metric fires when
// the budget is tiny and the program is large.
func TestSpilledProgramsReportSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	spilled := 0
	for trial := 0; trial < 20; trial++ {
		b, n := randomProgram(rng, false)
		p, err := b.Assemble(Options{MaxRegs: 6, SpillBase: 16384})
		if err != nil {
			t.Fatal(err)
		}
		if n > 6 && p.Spills > 0 {
			spilled++
		}
	}
	if spilled == 0 {
		t.Fatal("no random program spilled under a 6-register budget")
	}
}

// TestSchedulerNeverLosesInstructions: scheduled output must contain
// exactly the input instructions (as a multiset of opcodes).
func TestSchedulerNeverLosesInstructions(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		b, _ := randomProgram(rng, trial%2 == 0)
		baseline, err := b.Assemble(Options{Window: 0, SpillBase: 16384})
		if err != nil {
			t.Fatal(err)
		}
		b2, _ := randomProgram(rand.New(rand.NewSource(int64(trial))), trial%2 == 0)
		_ = b2
		counts := map[spu.Op]int{}
		for _, in := range baseline.Code {
			counts[in.Op]++
		}
		// Re-assemble the same builder is not possible (consumed), so
		// rebuild deterministically and compare opcode multisets under
		// scheduling.
		b3, _ := randomProgram(rand.New(rand.NewSource(int64(trial+1000))), trial%2 == 0)
		sched, err := b3.Assemble(Options{Window: 128, SpillBase: 16384})
		if err != nil {
			t.Fatal(err)
		}
		b4, _ := randomProgram(rand.New(rand.NewSource(int64(trial+1000))), trial%2 == 0)
		unsched, err := b4.Assemble(Options{Window: 0, SpillBase: 16384})
		if err != nil {
			t.Fatal(err)
		}
		cs, cu := map[spu.Op]int{}, map[spu.Op]int{}
		for _, in := range sched.Code {
			cs[in.Op]++
		}
		for _, in := range unsched.Code {
			cu[in.Op]++
		}
		for op, n := range cu {
			if cs[op] != n {
				t.Fatalf("trial %d: opcode %v count %d vs %d", trial, op, cs[op], n)
			}
		}
	}
}
