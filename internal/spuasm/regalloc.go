package spuasm

import (
	"fmt"
	"sort"

	"cellmatch/internal/spu"
)

// assignment is the result of register allocation.
type assignment struct {
	phys  []int16 // vreg -> physical register, or -1 if spilled
	slot  []int32 // vreg -> spill slot index (valid when phys < 0)
	nphys int     // distinct physical registers used
}

// interval is a live range over instruction positions.
type interval struct {
	v          VReg
	start, end int
	uses       int
}

// allocate runs block liveness, builds intervals and performs
// linear-scan allocation with a use-density spill heuristic. It
// returns the assignment and the number of spilled virtual registers.
func allocate(items []item, nvregs, maxRegs int) (*assignment, int, error) {
	ivs := buildIntervals(items, nvregs)
	asgn := &assignment{
		phys: make([]int16, nvregs),
		slot: make([]int32, nvregs),
	}
	for i := range asgn.phys {
		asgn.phys[i] = -1
		asgn.slot[i] = -1
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].v < ivs[j].v
	})
	free := make([]int16, 0, maxRegs)
	for r := maxRegs - 1; r >= 0; r-- {
		free = append(free, int16(r)) // pop order: r0 first
	}
	type activeIv struct {
		iv  interval
		reg int16
	}
	var active []activeIv
	spills := 0
	nextSlot := int32(0)
	usedPhys := map[int16]bool{}
	density := func(iv interval) float64 {
		length := iv.end - iv.start + 1
		return float64(iv.uses) / float64(length)
	}
	for _, iv := range ivs {
		// Expire finished intervals.
		keep := active[:0]
		for _, a := range active {
			if a.iv.end < iv.start {
				free = append(free, a.reg)
			} else {
				keep = append(keep, a)
			}
		}
		active = keep
		if len(free) > 0 {
			r := free[len(free)-1]
			free = free[:len(free)-1]
			asgn.phys[iv.v] = r
			usedPhys[r] = true
			active = append(active, activeIv{iv, r})
			continue
		}
		// Spill the lowest use-density interval among active+current:
		// long-lived rarely-used values go to the local store, which is
		// what a pressure-aware compiler does.
		victim := -1 // index into active, or -1 for current
		worst := density(iv)
		for i, a := range active {
			if d := density(a.iv); d < worst {
				worst = d
				victim = i
			}
		}
		if victim == -1 {
			asgn.slot[iv.v] = nextSlot
			nextSlot++
			spills++
			continue
		}
		// Evict the victim, give its register to the current interval.
		ev := active[victim]
		asgn.phys[ev.iv.v] = -1
		asgn.slot[ev.iv.v] = nextSlot
		nextSlot++
		spills++
		asgn.phys[iv.v] = ev.reg
		active[victim] = activeIv{iv, ev.reg}
	}
	asgn.nphys = len(usedPhys)
	return asgn, spills, nil
}

// block is one liveness unit.
type block struct {
	start, end int // instruction position range [start, end)
	succs      []int
	use, def   map[VReg]bool
	liveIn     map[VReg]bool
	liveOut    map[VReg]bool
}

// buildIntervals computes conservative live intervals via per-block
// liveness (handling loops properly through the backward-branch
// fixpoint) and then takes the min/max live position per vreg.
func buildIntervals(items []item, nvregs int) []interval {
	// Flatten instructions and find block boundaries: a block starts at
	// position 0, at every label, and after every branch or stop.
	var ins []vinst
	labelPos := map[string]int{}
	starts := map[int]bool{0: true}
	for _, it := range items {
		if it.label != "" {
			labelPos[it.label] = len(ins)
			starts[len(ins)] = true
			continue
		}
		ins = append(ins, it.in)
		if spu.IsBranch(it.in.op) || it.in.op == spu.OpSTOP {
			starts[len(ins)] = true
		}
	}
	n := len(ins)
	var bounds []int
	for p := range starts {
		if p < n {
			bounds = append(bounds, p)
		}
	}
	sort.Ints(bounds)
	blockOf := make([]int, n)
	var blocks []*block
	for i, s := range bounds {
		e := n
		if i+1 < len(bounds) {
			e = bounds[i+1]
		}
		b := &block{start: s, end: e, use: map[VReg]bool{}, def: map[VReg]bool{},
			liveIn: map[VReg]bool{}, liveOut: map[VReg]bool{}}
		for p := s; p < e; p++ {
			blockOf[p] = len(blocks)
			v := ins[p]
			for _, src := range v.sources() {
				if !b.def[src] {
					b.use[src] = true
				}
			}
			if d := v.dest(); d != noReg {
				b.def[d] = true
			}
		}
		blocks = append(blocks, b)
	}
	// Successor edges from each block's terminator.
	for i, b := range blocks {
		if b.end == b.start {
			continue
		}
		last := ins[b.end-1]
		switch {
		case last.op == spu.OpSTOP:
		case spu.IsBranch(last.op):
			if p, ok := labelPos[last.target]; ok && p < n {
				b.succs = append(b.succs, blockOf[p])
			}
			if last.op != spu.OpBR && i+1 < len(blocks) {
				b.succs = append(b.succs, i+1)
			}
		default:
			if i+1 < len(blocks) {
				b.succs = append(b.succs, i+1)
			}
		}
	}
	// Fixpoint liveness.
	changed := true
	for changed {
		changed = false
		for i := len(blocks) - 1; i >= 0; i-- {
			b := blocks[i]
			newOut := map[VReg]bool{}
			for _, s := range b.succs {
				for v := range blocks[s].liveIn {
					newOut[v] = true
				}
			}
			newIn := map[VReg]bool{}
			for v := range b.use {
				newIn[v] = true
			}
			for v := range newOut {
				if !b.def[v] {
					newIn[v] = true
				}
			}
			if len(newOut) != len(b.liveOut) || len(newIn) != len(b.liveIn) {
				changed = true
			}
			b.liveOut = newOut
			b.liveIn = newIn
		}
	}
	// Intervals: min/max positions where each vreg is defined, used,
	// or live at a block boundary.
	lo := make([]int, nvregs)
	hi := make([]int, nvregs)
	uses := make([]int, nvregs)
	seen := make([]bool, nvregs)
	touch := func(v VReg, p int) {
		if !seen[v] {
			seen[v] = true
			lo[v], hi[v] = p, p
			return
		}
		if p < lo[v] {
			lo[v] = p
		}
		if p > hi[v] {
			hi[v] = p
		}
	}
	for p, v := range ins {
		for _, s := range v.sources() {
			touch(s, p)
			uses[s]++
		}
		if d := v.dest(); d != noReg {
			touch(d, p)
			uses[d]++
		}
	}
	for _, b := range blocks {
		if b.end <= b.start {
			continue
		}
		for v := range b.liveIn {
			touch(v, b.start)
		}
		for v := range b.liveOut {
			touch(v, b.end-1)
		}
	}
	var out []interval
	for v := 0; v < nvregs; v++ {
		if seen[v] {
			out = append(out, interval{v: VReg(v), start: lo[v], end: hi[v], uses: uses[v]})
		}
	}
	return out
}

// emitFinal rewrites virtual registers to physical ones, inserting
// spill loads/stores around instructions that touch spilled vregs, and
// resolves labels to instruction indices.
func emitFinal(items []item, asgn *assignment, spills int, opts Options) (*spu.Program, error) {
	var code []spu.Instr
	labelAt := map[string]int{}
	type fixup struct {
		idx   int
		label string
	}
	var fixups []fixup
	if spills > 0 {
		// Prologue: establish the spill base pointer.
		code = append(code, spu.Instr{Op: spu.OpILA, Rt: spillBaseReg, Imm: int32(opts.SpillBase)})
	}
	mapReg := func(v VReg, temps *int, loads *[]spu.Instr) (uint8, error) {
		if v == noReg {
			return 0, nil
		}
		if p := asgn.phys[v]; p >= 0 {
			return uint8(p), nil
		}
		slot := asgn.slot[v]
		if slot < 0 {
			return 0, fmt.Errorf("spuasm: vreg %d neither allocated nor spilled", v)
		}
		var t uint8
		switch *temps {
		case 0:
			t = tempReg0
		case 1:
			t = tempReg1
		default:
			return 0, fmt.Errorf("spuasm: more than two spilled sources in one instruction")
		}
		*temps++
		*loads = append(*loads, spu.Instr{Op: spu.OpLQD, Rt: t, Ra: spillBaseReg, Imm: slot * 16})
		return t, nil
	}
	for _, it := range items {
		if it.label != "" {
			labelAt[it.label] = len(code)
			continue
		}
		v := it.in
		temps := 0
		var loads []spu.Instr
		var stores []spu.Instr
		out := spu.Instr{Op: v.op, Imm: v.imm, Hinted: v.hinted}
		var err error
		// Sources first (rt is a source for stores/branches).
		srcIsRt := false
		switch v.op {
		case spu.OpSTQD, spu.OpSTQX, spu.OpBRZ, spu.OpBRNZ, spu.OpIOHL:
			srcIsRt = true
		}
		if srcIsRt && v.rt != noReg {
			out.Rt, err = mapReg(v.rt, &temps, &loads)
			if err != nil {
				return nil, err
			}
		}
		if out.Ra, err = mapReg(v.ra, &temps, &loads); err != nil {
			return nil, err
		}
		if out.Rb, err = mapReg(v.rb, &temps, &loads); err != nil {
			return nil, err
		}
		if out.Rc, err = mapReg(v.rc, &temps, &loads); err != nil {
			return nil, err
		}
		// Destination (possibly also a source for IOHL, handled above).
		if !srcIsRt && v.rt != noReg {
			if p := asgn.phys[v.rt]; p >= 0 {
				out.Rt = uint8(p)
			} else {
				out.Rt = tempReg0
				stores = append(stores, spu.Instr{
					Op: spu.OpSTQD, Rt: tempReg0, Ra: spillBaseReg, Imm: asgn.slot[v.rt] * 16})
			}
		}
		code = append(code, loads...)
		if v.target != "" {
			fixups = append(fixups, fixup{len(code), v.target})
		}
		code = append(code, out)
		code = append(code, stores...)
	}
	for _, f := range fixups {
		t, ok := labelAt[f.label]
		if !ok {
			return nil, fmt.Errorf("spuasm: unresolved label %q", f.label)
		}
		code[f.idx].Target = int32(t)
	}
	return &spu.Program{Code: code}, nil
}

var _ = sortInts // keep the debug helper referenced
