package spuasm

import (
	"sort"

	"cellmatch/internal/spu"
)

// scheduleItems list-schedules every basic block. Blocks are maximal
// instruction runs not crossing labels or branches; the terminating
// branch (if any) stays last. Window 0 disables scheduling.
func scheduleItems(items []item, window int) []item {
	if window <= 0 {
		return items
	}
	var out []item
	var block []vinst
	flush := func(term *vinst) {
		if len(block) > 0 {
			for _, v := range scheduleBlock(block, window) {
				out = append(out, item{in: v})
			}
			block = nil
		}
		if term != nil {
			out = append(out, item{in: *term})
		}
	}
	for _, it := range items {
		switch {
		case it.label != "":
			flush(nil)
			out = append(out, it)
		case spu.IsBranch(it.in.op) || it.in.op == spu.OpSTOP:
			v := it.in
			flush(&v)
		default:
			block = append(block, it.in)
		}
	}
	flush(nil)
	return out
}

// scheduleBlock reorders one basic block with a priority list scheduler
// bounded by a lookahead window over original program order.
//
// Dependencies: RAW, WAR, WAW on virtual registers; stores order with
// all other memory operations (loads reorder freely among themselves).
func scheduleBlock(block []vinst, window int) []vinst {
	n := len(block)
	if n <= 2 {
		return block
	}
	succs := make([][]int, n)
	npred := make([]int, n)
	addDep := func(from, to int) {
		if from < 0 || from == to {
			return
		}
		succs[from] = append(succs[from], to)
		npred[to]++
	}
	lastDef := map[VReg]int{}
	lastUses := map[VReg][]int{}
	lastStore := -1
	var loadsSince []int
	for i, v := range block {
		for _, s := range v.sources() {
			if d, ok := lastDef[s]; ok {
				addDep(d, i) // RAW
			}
			lastUses[s] = append(lastUses[s], i)
		}
		if d := v.dest(); d != noReg {
			if pd, ok := lastDef[d]; ok {
				addDep(pd, i) // WAW
			}
			for _, u := range lastUses[d] {
				addDep(u, i) // WAR
			}
			lastDef[d] = i
			lastUses[d] = nil
		}
		if v.isMem() {
			if v.isStore() {
				addDep(lastStore, i)
				for _, l := range loadsSince {
					addDep(l, i)
				}
				lastStore = i
				loadsSince = nil
			} else {
				addDep(lastStore, i)
				loadsSince = append(loadsSince, i)
			}
		}
	}
	// Priority: critical-path height (latency-weighted), computed
	// backwards. Loads get an extra boost: compilers hoist long-latency
	// loads ahead of everything else, which is both why unrolled bodies
	// lose their stalls and why their register pressure climbs (the
	// loaded values stay live until their consumers finally issue).
	const loadBoost = 16
	height := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		h := 0
		for _, s := range succs[i] {
			if height[s] > h {
				h = height[s]
			}
		}
		height[i] = h + spu.Latency(block[i].op)
		if block[i].op == spu.OpLQD || block[i].op == spu.OpLQX {
			height[i] += loadBoost
		}
	}
	// Cycle-driven list scheduling: model the dual-issue machine (one
	// even-pipe and one odd-pipe slot per cycle) and at each cycle
	// issue the highest instructions ready under operand latencies.
	// This is what interleaves the sixteen independent stream chains
	// and removes the load-latency stalls, the effect the paper
	// attributes to the compiler on the unrolled body.
	scheduled := make([]bool, n)
	readyAt := make([]int, n) // earliest cycle operands allow issue
	order := make([]vinst, 0, n)
	done := 0
	minUnsched := 0
	vclock := 0
	for done < n {
		limit := minUnsched + window
		pick := func(pipe spu.Pipe) int {
			best := -1
			for i := minUnsched; i < n && i < limit; i++ {
				if scheduled[i] || npred[i] > 0 || readyAt[i] > vclock {
					continue
				}
				if spu.PipeOf(block[i].op) != pipe {
					continue
				}
				if best == -1 || height[i] > height[best] {
					best = i
				}
			}
			return best
		}
		issue := func(i int) {
			scheduled[i] = true
			order = append(order, block[i])
			done++
			for _, s := range succs[i] {
				npred[s]--
				if t := vclock + spu.Latency(block[i].op); t > readyAt[s] {
					readyAt[s] = t
				}
			}
			for minUnsched < n && scheduled[minUnsched] {
				minUnsched++
			}
		}
		e := pick(spu.Even)
		if e >= 0 {
			issue(e)
		}
		o := pick(spu.Odd)
		if o >= 0 {
			issue(o)
		}
		if e < 0 && o < 0 {
			// Nothing ready this cycle: jump to the next event, or (if
			// the window has fully stalled on a long dependence) fall
			// back to the earliest ready instruction anywhere.
			next := -1
			for i := minUnsched; i < n && i < limit; i++ {
				if scheduled[i] || npred[i] > 0 {
					continue
				}
				if next == -1 || readyAt[i] < next {
					next = readyAt[i]
				}
			}
			if next > vclock {
				vclock = next
				continue
			}
			for i := minUnsched; i < n; i++ {
				if !scheduled[i] && npred[i] == 0 {
					issue(i)
					break
				}
			}
		}
		vclock++
	}
	return order
}

// sortInts is a tiny helper kept for deterministic debug output.
func sortInts(xs []int) { sort.Ints(xs) }
