package spuasm

import (
	"fmt"
	"testing"

	"cellmatch/internal/spu"
)

// execute assembles and runs, returning the CPU.
func execute(t *testing.T, b *Builder, opts Options) (*spu.CPU, *spu.Program) {
	t.Helper()
	p, err := b.Assemble(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := spu.New()
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Prof.Check(); err != nil {
		t.Fatal(err)
	}
	return c, p
}

// resultOf stores rt to LS[addr] in the epilogue so tests can read it
// regardless of physical register assignment.
func storeResult(b *Builder, rt VReg, addr int32) {
	base := b.NewReg("resbase")
	b.ILA(base, addr)
	b.STQD(rt, base, 0)
}

func TestSimpleProgram(t *testing.T) {
	b := NewBuilder()
	x := b.NewReg("x")
	y := b.NewReg("y")
	z := b.NewReg("z")
	b.IL(x, 20)
	b.IL(y, 22)
	b.A(z, x, y)
	storeResult(b, z, 1024)
	b.STOP()
	c, p := execute(t, b, Options{Name: "simple"})
	if got := c.ReadLS(1024, 4); got[3] != 42 {
		t.Fatalf("result = %v", got)
	}
	if p.RegsUsed > 5 {
		t.Fatalf("simple program used %d regs", p.RegsUsed)
	}
	if p.Spills != 0 {
		t.Fatalf("unexpected spills: %d", p.Spills)
	}
}

func TestLoopProgram(t *testing.T) {
	// sum = 0; for i = 10; i != 0; i-- { sum += i } -> 55
	b := NewBuilder()
	i := b.NewReg("i")
	sum := b.NewReg("sum")
	b.IL(i, 10)
	b.IL(sum, 0)
	b.Label("loop")
	b.A(sum, sum, i)
	b.AI(i, i, -1)
	b.BRNZ(i, "loop", true)
	storeResult(b, sum, 2048)
	b.STOP()
	c, _ := execute(t, b, Options{Name: "loop", Window: 8})
	if got := c.ReadLS(2048, 4); got[3] != 55 {
		t.Fatalf("sum = %v", got)
	}
}

func TestSchedulingPreservesSemantics(t *testing.T) {
	// A block with reorderable independent work plus strict chains:
	// results must not change for any window.
	build := func() *Builder {
		b := NewBuilder()
		a1 := b.NewReg("a1")
		a2 := b.NewReg("a2")
		a3 := b.NewReg("a3")
		acc := b.NewReg("acc")
		b.IL(a1, 3)
		b.IL(a2, 5)
		b.A(a3, a1, a2)    // 8
		b.SHLI(acc, a3, 2) // 32
		b.AI(acc, acc, 1)  // 33
		b.A(acc, acc, a1)  // 36
		storeResult(b, acc, 512)
		b.STOP()
		return b
	}
	var want byte
	for _, w := range []int{0, 1, 2, 4, 16, 64} {
		c, _ := execute(t, build(), Options{Window: w})
		got := c.ReadLS(512, 4)[3]
		if w == 0 {
			want = got
		} else if got != want {
			t.Fatalf("window %d changed result: %d vs %d", w, got, want)
		}
	}
	if want != 36 {
		t.Fatalf("result = %d, want 36", want)
	}
}

func TestSchedulingReducesStalls(t *testing.T) {
	// Two interleavable dependent chains; without scheduling they run
	// back-to-back (stalls), with scheduling they interleave.
	build := func() *Builder {
		b := NewBuilder()
		x := b.NewReg("x")
		y := b.NewReg("y")
		b.IL(x, 1)
		b.IL(y, 1)
		// chain on x
		for k := 0; k < 10; k++ {
			b.AI(x, x, 1)
		}
		// chain on y
		for k := 0; k < 10; k++ {
			b.AI(y, y, 1)
		}
		s := b.NewReg("s")
		b.A(s, x, y)
		storeResult(b, s, 768)
		b.STOP()
		return b
	}
	cNo, _ := execute(t, build(), Options{Window: 0})
	cYes, _ := execute(t, build(), Options{Window: 32})
	if got := cYes.ReadLS(768, 4)[3]; got != 22 {
		t.Fatalf("scheduled result = %d", got)
	}
	if cYes.Prof.Cycles >= cNo.Prof.Cycles {
		t.Fatalf("scheduling did not help: %d vs %d cycles", cYes.Prof.Cycles, cNo.Prof.Cycles)
	}
}

func TestRegisterReuse(t *testing.T) {
	// 50 sequential short-lived temps must reuse a handful of physical
	// registers.
	b := NewBuilder()
	acc := b.NewReg("acc")
	b.IL(acc, 0)
	for k := 0; k < 50; k++ {
		tmp := b.NewReg(fmt.Sprintf("t%d", k))
		b.IL(tmp, 1)
		b.A(acc, acc, tmp)
	}
	storeResult(b, acc, 256)
	b.STOP()
	c, p := execute(t, b, Options{Window: 0})
	if got := c.ReadLS(256, 4)[3]; got != 50 {
		t.Fatalf("acc = %d", got)
	}
	if p.RegsUsed > 10 {
		t.Fatalf("no register reuse: %d regs", p.RegsUsed)
	}
}

func TestSpillingCorrectness(t *testing.T) {
	// 140 simultaneously-live values exceed the 125 allocatable
	// registers; the program must spill and still sum correctly.
	b := NewBuilder()
	n := 140
	regs := make([]VReg, n)
	for k := 0; k < n; k++ {
		regs[k] = b.NewReg(fmt.Sprintf("v%d", k))
		b.IL(regs[k], int32(k+1))
	}
	acc := b.NewReg("acc")
	b.IL(acc, 0)
	for k := 0; k < n; k++ {
		b.A(acc, acc, regs[k])
	}
	storeResult(b, acc, 4096)
	b.STOP()
	c, p := execute(t, b, Options{Window: 0, SpillBase: 8192})
	want := n * (n + 1) / 2 // 9870
	got := int(c.ReadLS(4096, 4)[2])<<8 | int(c.ReadLS(4096, 4)[3])
	if got != want {
		t.Fatalf("spilled sum = %d, want %d", got, want)
	}
	if p.Spills == 0 {
		t.Fatal("expected spills")
	}
}

func TestNoSpillUnderLimit(t *testing.T) {
	b := NewBuilder()
	n := 100
	regs := make([]VReg, n)
	for k := 0; k < n; k++ {
		regs[k] = b.NewReg(fmt.Sprintf("v%d", k))
		b.IL(regs[k], 1)
	}
	acc := b.NewReg("acc")
	b.IL(acc, 0)
	for k := 0; k < n; k++ {
		b.A(acc, acc, regs[k])
	}
	storeResult(b, acc, 4096)
	b.STOP()
	_, p := execute(t, b, Options{Window: 0})
	if p.Spills != 0 {
		t.Fatalf("spilled with only %d live values: %d spills", n, p.Spills)
	}
	if p.RegsUsed < n {
		t.Fatalf("regs used %d < %d live values", p.RegsUsed, n)
	}
}

func TestLoopCarriedLiveness(t *testing.T) {
	// A register defined before the loop and used only inside it must
	// stay allocated across the loop (the backedge makes it live).
	b := NewBuilder()
	k := b.NewReg("k")
	i := b.NewReg("i")
	sum := b.NewReg("sum")
	b.IL(k, 7)
	b.IL(i, 5)
	b.IL(sum, 0)
	b.Label("top")
	// Temps inside the loop: they must not steal k's register.
	for j := 0; j < 30; j++ {
		tmp := b.NewReg(fmt.Sprintf("lt%d", j))
		b.IL(tmp, 1)
		b.A(sum, sum, tmp)
	}
	b.A(sum, sum, k)
	b.AI(i, i, -1)
	b.BRNZ(i, "top", true)
	storeResult(b, sum, 512)
	b.STOP()
	c, _ := execute(t, b, Options{Window: 16})
	got := int(c.ReadLS(512, 4)[3]) | int(c.ReadLS(512, 4)[2])<<8
	if got != 5*(30+7) {
		t.Fatalf("loop sum = %d, want %d", got, 5*37)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	r := b.NewReg("r")
	b.IL(r, 1)
	b.BRNZ(r, "nowhere", false)
	b.STOP()
	if _, err := b.Assemble(Options{}); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x")
	b.Label("x")
	b.STOP()
	if _, err := b.Assemble(Options{}); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestBranchTargetsSurviveSpilling(t *testing.T) {
	// Force spills inside a loop and verify the loop still terminates
	// with the right trip count.
	b := NewBuilder()
	n := 130
	regs := make([]VReg, n)
	for k := 0; k < n; k++ {
		regs[k] = b.NewReg(fmt.Sprintf("v%d", k))
		b.IL(regs[k], 1)
	}
	i := b.NewReg("i")
	cnt := b.NewReg("cnt")
	b.IL(i, 3)
	b.IL(cnt, 0)
	b.Label("loop")
	b.A(cnt, cnt, regs[0])
	b.A(cnt, cnt, regs[n-1])
	b.AI(i, i, -1)
	b.BRNZ(i, "loop", true)
	// Keep everything alive past the loop so pressure is real.
	acc := b.NewReg("acc")
	b.IL(acc, 0)
	for k := 0; k < n; k++ {
		b.A(acc, acc, regs[k])
	}
	b.A(acc, acc, cnt)
	storeResult(b, acc, 1024)
	b.STOP()
	c, p := execute(t, b, Options{Window: 0, SpillBase: 16384})
	if p.Spills == 0 {
		t.Fatal("expected spills")
	}
	got := int(c.ReadLS(1024, 4)[3]) | int(c.ReadLS(1024, 4)[2])<<8
	if got != n+6 {
		t.Fatalf("result = %d, want %d", got, n+6)
	}
}

func TestWindowZeroKeepsOrder(t *testing.T) {
	b := NewBuilder()
	x := b.NewReg("x")
	y := b.NewReg("y")
	b.IL(x, 1)
	b.IL(y, 2)
	b.STOP()
	p, err := b.Assemble(Options{Window: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Op != spu.OpIL || p.Code[0].Imm != 1 {
		t.Fatal("window 0 reordered code")
	}
}
