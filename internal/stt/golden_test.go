package stt

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/dfa"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// goldenSTT encodes the fixed fixture dictionary at the paper's width
// 32. Construction is deterministic end to end, so the big-endian
// local-store image must be reproducible bit-for-bit; any drift in the
// encoding (entry layout, flag packing, padding columns) fails here.
func goldenSTT(t *testing.T) *Table {
	t.Helper()
	red := alphabet.CaseFold32()
	d, err := dfa.FromPatterns([][]byte{
		[]byte("VIRUS"), []byte("WORM"), []byte("RUSV"),
	}, red)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Encode(d, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestGoldenSTTImage(t *testing.T) {
	path := filepath.Join("testdata", "stt_v1.golden")
	img := goldenSTT(t).Bytes()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if !bytes.Equal(img, want) {
		t.Fatalf("stt image drifted from golden fixture: %d bytes vs %d", len(img), len(want))
	}
}

// The checked-in image must round-trip through FromBytes and count the
// same final entries as the freshly encoded table.
func TestGoldenSTTReload(t *testing.T) {
	path := filepath.Join("testdata", "stt_v1.golden")
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	fresh := goldenSTT(t)
	loaded, err := FromBytes(img, fresh.Syms, fresh.Width, fresh.Base)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(loaded.Data) != len(fresh.Data) {
		t.Fatalf("loaded %d entries, fresh %d", len(loaded.Data), len(fresh.Data))
	}
	for i := range fresh.Data {
		if loaded.Data[i] != fresh.Data[i] {
			t.Fatalf("entry %d: loaded %#x, fresh %#x", i, loaded.Data[i], fresh.Data[i])
		}
	}
	probe := alphabet.CaseFold32().Reduce([]byte("a virus, a WORM, and virusvirus rusv"))
	if got, want := loaded.CountFinalEntries(probe), fresh.CountFinalEntries(probe); got != want || want == 0 {
		t.Fatalf("loaded table counts %d, fresh %d", got, want)
	}
}
