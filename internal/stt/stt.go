// Package stt implements the paper's State Transition Table encoding
// (Section 4): a complete table with one row per state and one 4-byte
// word per input symbol, where the *current state is represented as a
// pointer to its row* rather than an index.
//
// Rows are a power-of-two number of bytes (32 symbols x 4 bytes =
// 128 B) and the table base is row-aligned, so every row pointer has
// its low log2(stride) bits equal to zero. The paper exploits this to
// pack the "next state is final" flag into bit 0 of each entry: a
// state transition is then exactly
//
//	entry = load32(cur + 4*sym)
//	cur   = entry & 0xFFFFFFFE
//	flag  = entry & 0x00000001
//
// with no shift or multiply, which is what makes the 5-cycle inner
// loop of Table 1 possible.
package stt

import (
	"encoding/binary"
	"fmt"

	"cellmatch/internal/dfa"
)

// FlagFinal is the final-state flag packed into entry bit 0.
const FlagFinal uint32 = 1

// PtrMask clears the flag bits from an entry, yielding the row pointer.
const PtrMask = ^uint32(1)

// Table is an encoded STT bound to a base address (normally a local
// store address, but any stride-aligned uint32 works, which lets the
// native matcher use the identical encoding in host memory).
type Table struct {
	Syms   int    // meaningful columns (the DFA alphabet)
	Width  int    // row width in entries (power of two >= Syms)
	Stride uint32 // row size in bytes = 4*Width
	Base   uint32 // aligned base address
	States int

	// Data holds States*Width encoded entries, row-major.
	Data []uint32

	start  uint32
	accept []bool
}

// Encode builds the table for a DFA with rows of the given width at
// the given base address.
func Encode(d *dfa.DFA, width int, base uint32) (*Table, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if width < d.Syms {
		return nil, fmt.Errorf("stt: width %d < alphabet %d", width, d.Syms)
	}
	if width&(width-1) != 0 {
		return nil, fmt.Errorf("stt: width %d not a power of two", width)
	}
	stride := uint32(width * 4)
	if base%stride != 0 {
		return nil, fmt.Errorf("stt: base %#x not aligned to row stride %d", base, stride)
	}
	n := d.NumStates()
	end := uint64(base) + uint64(n)*uint64(stride)
	if end > 1<<32 {
		return nil, fmt.Errorf("stt: %d states at base %#x exceed 32-bit addressing", n, base)
	}
	t := &Table{
		Syms:   d.Syms,
		Width:  width,
		Stride: stride,
		Base:   base,
		States: n,
		Data:   make([]uint32, n*width),
		accept: append([]bool(nil), d.Accept...),
	}
	rowPtr := func(s int32) uint32 { return base + uint32(s)*stride }
	for s := 0; s < n; s++ {
		for c := 0; c < width; c++ {
			var next int32
			if c < d.Syms {
				next = d.Next[s*d.Syms+c]
			} else {
				next = int32(d.Start) // padding columns: restart, no flag
			}
			e := rowPtr(next)
			if c < d.Syms && d.Accept[next] {
				e |= FlagFinal
			}
			t.Data[s*width+c] = e
		}
	}
	t.start = rowPtr(int32(d.Start))
	if d.Accept[d.Start] {
		t.start |= FlagFinal
	}
	return t, nil
}

// StartPtr returns the encoded pointer of the initial state.
func (t *Table) StartPtr() uint32 { return t.start }

// SizeBytes returns the serialized table size.
func (t *Table) SizeBytes() int { return t.States * int(t.Stride) }

// Lookup performs one transition from the encoded state cur on sym,
// returning the encoded next state (pointer plus flag bit). This is
// the native-Go equivalent of the SPU inner loop.
func (t *Table) Lookup(cur uint32, sym byte) uint32 {
	idx := (cur&PtrMask-t.Base)>>2 + uint32(sym)
	return t.Data[idx]
}

// IsFinal reports whether the encoded state has the final flag set.
func IsFinal(ptr uint32) bool { return ptr&FlagFinal != 0 }

// StateOf decodes an encoded pointer back to a state index.
func (t *Table) StateOf(ptr uint32) int {
	return int((ptr&PtrMask - t.Base) / t.Stride)
}

// PtrOf returns the encoded pointer for a state index (flag included).
func (t *Table) PtrOf(s int) uint32 {
	p := t.Base + uint32(s)*t.Stride
	if t.accept != nil && t.accept[s] {
		p |= FlagFinal
	}
	return p
}

// Bytes serializes the table to its big-endian local-store image.
func (t *Table) Bytes() []byte {
	out := make([]byte, t.SizeBytes())
	for i, e := range t.Data {
		binary.BigEndian.PutUint32(out[i*4:], e)
	}
	return out
}

// FromBytes reconstructs entry data from a big-endian image; metadata
// (alphabet, base, width, states) must be supplied. Used to verify the
// local-store image round-trips.
func FromBytes(img []byte, syms, width int, base uint32) (*Table, error) {
	stride := uint32(width * 4)
	if width < syms || width&(width-1) != 0 {
		return nil, fmt.Errorf("stt: bad width %d", width)
	}
	if len(img)%int(stride) != 0 {
		return nil, fmt.Errorf("stt: image size %d not a row multiple", len(img))
	}
	if base%stride != 0 {
		return nil, fmt.Errorf("stt: base %#x unaligned", base)
	}
	t := &Table{
		Syms:   syms,
		Width:  width,
		Stride: stride,
		Base:   base,
		States: len(img) / int(stride),
		Data:   make([]uint32, len(img)/4),
	}
	for i := range t.Data {
		t.Data[i] = binary.BigEndian.Uint32(img[i*4:])
	}
	t.start = base
	return t, nil
}

// CountFinalEntries scans reduced input with the encoded table,
// counting transitions that enter a final state — the same semantics
// as dfa.CountFinalEntries and the SPU kernels, used as the
// cross-check between representations.
func (t *Table) CountFinalEntries(input []byte) int {
	cur := t.start & PtrMask
	count := 0
	for _, c := range input {
		e := t.Lookup(cur, c)
		count += int(e & FlagFinal)
		cur = e & PtrMask
	}
	return count
}

// Validate checks every entry points at a row inside the table and
// padding columns carry no flags.
func (t *Table) Validate() error {
	lo := t.Base
	hi := t.Base + uint32(t.States)*t.Stride
	for i, e := range t.Data {
		p := e & PtrMask
		if p < lo || p >= hi {
			return fmt.Errorf("stt: entry %d points outside table: %#x", i, p)
		}
		if (p-lo)%t.Stride != 0 {
			return fmt.Errorf("stt: entry %d not row-aligned: %#x", i, p)
		}
	}
	return nil
}
