package stt

import (
	"math/rand"
	"testing"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/dfa"
)

func testDFA(t *testing.T) *dfa.DFA {
	t.Helper()
	d, err := dfa.FromPatterns([][]byte{[]byte("AB"), []byte("BCA")}, alphabet.CaseFold32())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEncodeBasics(t *testing.T) {
	d := testDFA(t)
	tab, err := Encode(d, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Stride != 128 {
		t.Fatalf("stride = %d", tab.Stride)
	}
	if tab.SizeBytes() != d.NumStates()*128 {
		t.Fatalf("size = %d", tab.SizeBytes())
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeErrors(t *testing.T) {
	d := testDFA(t)
	if _, err := Encode(d, 16, 0); err == nil {
		t.Fatal("width below alphabet accepted")
	}
	if _, err := Encode(d, 48, 0); err == nil {
		t.Fatal("non-power-of-two width accepted")
	}
	if _, err := Encode(d, 32, 64); err == nil {
		t.Fatal("unaligned base accepted")
	}
	bad := d.Clone()
	bad.Start = 999
	if _, err := Encode(bad, 32, 0); err == nil {
		t.Fatal("invalid DFA accepted")
	}
}

func TestLookupMatchesStep(t *testing.T) {
	d := testDFA(t)
	tab, err := Encode(d, 32, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < d.NumStates(); s++ {
		for c := 0; c < d.Syms; c++ {
			e := tab.Lookup(tab.PtrOf(s), byte(c))
			next := d.Step(s, byte(c))
			if tab.StateOf(e) != next {
				t.Fatalf("state %d sym %d: table %d, dfa %d", s, c, tab.StateOf(e), next)
			}
			if IsFinal(e) != d.Accept[next] {
				t.Fatalf("state %d sym %d: flag %v, accept %v", s, c, IsFinal(e), d.Accept[next])
			}
		}
	}
}

func TestPaddingColumnsSafe(t *testing.T) {
	// Width 64 with a 32-symbol DFA: columns 32..63 must point at the
	// start row with no flag.
	d := testDFA(t)
	tab, err := Encode(d, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < d.NumStates(); s++ {
		for c := d.Syms; c < 64; c++ {
			e := tab.Data[s*64+c]
			if tab.StateOf(e) != d.Start || IsFinal(e) {
				t.Fatalf("padding entry state %d col %d = %#x", s, c, e)
			}
		}
	}
}

func TestCountMatchesDFA(t *testing.T) {
	red := alphabet.CaseFold32()
	d, err := dfa.FromPatterns([][]byte{[]byte("VIRUS"), []byte("WORM")}, red)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Encode(d, 32, 8192)
	if err != nil {
		t.Fatal(err)
	}
	text := red.Reduce([]byte("A VIRUS AND A WORM AND A VIRUS"))
	if got, want := tab.CountFinalEntries(text), d.CountFinalEntries(text); got != want {
		t.Fatalf("table count %d, dfa count %d", got, want)
	}
	if tab.CountFinalEntries(text) != 3 {
		t.Fatalf("count = %d, want 3", tab.CountFinalEntries(text))
	}
}

func TestBytesRoundTrip(t *testing.T) {
	d := testDFA(t)
	tab, err := Encode(d, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	img := tab.Bytes()
	back, err := FromBytes(img, tab.Syms, tab.Width, tab.Base)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Data) != len(tab.Data) {
		t.Fatalf("data length %d vs %d", len(back.Data), len(tab.Data))
	}
	for i := range tab.Data {
		if back.Data[i] != tab.Data[i] {
			t.Fatalf("entry %d: %#x vs %#x", i, back.Data[i], tab.Data[i])
		}
	}
	// Big-endian check: first entry's MSB is img[0].
	if img[0] != byte(tab.Data[0]>>24) {
		t.Fatal("image not big-endian")
	}
}

func TestFromBytesErrors(t *testing.T) {
	if _, err := FromBytes(make([]byte, 100), 32, 32, 0); err == nil {
		t.Fatal("ragged image accepted")
	}
	if _, err := FromBytes(make([]byte, 128), 32, 31, 0); err == nil {
		t.Fatal("bad width accepted")
	}
	if _, err := FromBytes(make([]byte, 128), 32, 32, 4); err == nil {
		t.Fatal("unaligned base accepted")
	}
}

func TestStartPtrFlag(t *testing.T) {
	// A dictionary can never make the start state final (patterns are
	// non-empty), so the start pointer has no flag.
	d := testDFA(t)
	tab, err := Encode(d, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if IsFinal(tab.StartPtr()) {
		t.Fatal("start state flagged final")
	}
}

func TestFigure3SizeArithmetic(t *testing.T) {
	// 1520 states at width 32 is exactly the 190 KB STT of Figure 3.
	red := alphabet.CaseFold32()
	// Build a dictionary with exactly 1520 trie states: a chain works.
	var chain []byte
	for i := 0; i < 1519; i++ {
		chain = append(chain, byte('A'+i%26))
	}
	d, err := dfa.FromPatterns([][]byte{chain}, red)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumStates() != 1520 {
		t.Fatalf("states = %d", d.NumStates())
	}
	tab, err := Encode(d, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tab.SizeBytes() != 190*1024 {
		t.Fatalf("STT size = %d, want 190 KB", tab.SizeBytes())
	}
}

// Property: on random dictionaries and inputs, the encoded table scan
// agrees with the DFA scan exactly.
func TestTableScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	red := alphabet.CaseFold32()
	for trial := 0; trial < 60; trial++ {
		np := 1 + rng.Intn(6)
		dict := make([][]byte, np)
		for i := range dict {
			l := 1 + rng.Intn(8)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('A' + rng.Intn(4))
			}
			dict[i] = p
		}
		d, err := dfa.FromPatterns(dict, red)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := Encode(d, 32, uint32(128*rng.Intn(4)))
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.Validate(); err != nil {
			t.Fatal(err)
		}
		text := make([]byte, 300)
		for j := range text {
			text[j] = byte('A' + rng.Intn(4))
		}
		rt := red.Reduce(text)
		if got, want := tab.CountFinalEntries(rt), d.CountFinalEntries(rt); got != want {
			t.Fatalf("trial %d: table %d vs dfa %d", trial, got, want)
		}
	}
}
