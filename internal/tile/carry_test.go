package tile

import (
	"testing"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/dfa"
	"cellmatch/internal/stt"
)

// TestCarryAcrossBlocks: a pattern split across two consecutive blocks
// of the same streams must still be counted when states carry, and
// must be missed when they do not — both on the simulated kernel and
// the native matcher.
func TestCarryAcrossBlocks(t *testing.T) {
	red := alphabet.CaseFold32()
	d, err := dfa.FromPatterns([][]byte{[]byte("SPLITPATTERN")}, red)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := New(d, Config{Version: 2}) // granularity 16
	if err != nil {
		t.Fatal(err)
	}
	// Stream 5 carries the pattern straddling the block boundary:
	// "SPLIT" at the end of block 1, "PATTERN" at the start of block 2.
	mk := func(fill byte, n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = fill
		}
		return out
	}
	perStream := 16
	block1 := make([]byte, 16*perStream)
	block2 := make([]byte, 16*perStream)
	head := red.Reduce([]byte("SPLIT"))
	tail := red.Reduce([]byte("PATTERN"))
	copy(block1, mk(0, len(block1)))
	copy(block2, mk(0, len(block2)))
	for j, c := range head {
		q := perStream - len(head) + j
		block1[q*16+5] = c
	}
	for j, c := range tail {
		block2[j*16+5] = c
	}

	// With carry: one match, at the end of the pattern in block 2.
	states := tl.StartStates()
	c1, states, _, err := tl.MatchBlockSimCarry(block1, states)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, _, err := tl.MatchBlockSimCarry(block2, states)
	if err != nil {
		t.Fatal(err)
	}
	total := c1[5] + c2[5]
	if total != 1 {
		t.Fatalf("carried scan found %d matches, want 1", total)
	}

	// Without carry (fresh states per block): zero matches.
	a, _, err := tl.MatchBlockSim(block1)
	if err != nil {
		t.Fatal(err)
	}
	bq, _, err := tl.MatchBlockSim(block2)
	if err != nil {
		t.Fatal(err)
	}
	if a[5]+bq[5] != 0 {
		t.Fatalf("uncarried scan found %d matches, want 0", a[5]+bq[5])
	}

	// Native carry agrees with the simulated kernel.
	var cur [16]uint32
	start := tl.Table.StartPtr() & stt.PtrMask
	for i := range cur {
		cur[i] = start
	}
	n1, err := InterleavedCount16From(tl.Table, block1, &cur)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := InterleavedCount16From(tl.Table, block2, &cur)
	if err != nil {
		t.Fatal(err)
	}
	if n1[5]+n2[5] != 1 {
		t.Fatalf("native carried scan found %d, want 1", n1[5]+n2[5])
	}
}

// TestCarryScalarKernel does the same for the V1 scalar kernel.
func TestCarryScalarKernel(t *testing.T) {
	red := alphabet.CaseFold32()
	d, err := dfa.FromPatterns([][]byte{[]byte("ABCD")}, red)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := New(d, Config{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	block1 := red.Reduce([]byte("XXXXXXAB"))
	block2 := red.Reduce([]byte("CDXXXXXX"))
	states := tl.StartStates()
	c1, states, _, err := tl.MatchBlockSimCarry(block1, states)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, _, err := tl.MatchBlockSimCarry(block2, states)
	if err != nil {
		t.Fatal(err)
	}
	if c1[0]+c2[0] != 1 {
		t.Fatalf("scalar carry found %d, want 1", c1[0]+c2[0])
	}
	// Native scalar carry agrees.
	n1, cur := ScalarCountFrom(tl.Table, block1, tl.Table.StartPtr())
	n2, _ := ScalarCountFrom(tl.Table, block2, cur)
	if n1+n2 != 1 {
		t.Fatalf("native scalar carry found %d, want 1", n1+n2)
	}
}

// TestCarryStateValidation rejects mismatched state vectors.
func TestCarryStateValidation(t *testing.T) {
	red := alphabet.CaseFold32()
	d, err := dfa.FromPatterns([][]byte{[]byte("AB")}, red)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := New(d, Config{Version: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tl.MatchBlockSimCarry(make([]byte, 32), []uint32{1}); err == nil {
		t.Fatal("wrong state count accepted")
	}
}
