package tile

import (
	"fmt"

	"cellmatch/internal/spu"
	"cellmatch/internal/spuasm"
)

// kernelCfg fixes the parameters a kernel is specialized for. The
// kernels are generated per tile and per block size, the way the
// paper's C implementations were compiled per configuration.
type kernelCfg struct {
	version     int    // 1..5 (Table 1)
	transitions int    // per-stream count for v1; total/16 quadwords for v2+
	inputBase   uint32 // LS address of the input buffer
	startPtr    uint32 // encoded start state pointer
	countsOut   uint32 // LS address for the 16 result quadwords
	spillBase   uint32 // LS address of the spill area
	patternBase uint32 // LS address of the 16 extraction shuffle patterns
	stateBase   uint32 // LS address of the 16 state-pointer quadwords
}

// PatternTable returns the 16 resident shuffle patterns of Figure 4:
// pattern i moves byte i of the offsets quadword into the low byte of
// the preferred word and zeroes everything else (selector 0x80).
func PatternTable() []byte {
	out := make([]byte, 16*16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			out[i*16+j] = 0x80
		}
		out[i*16+3] = byte(i)
	}
	return out
}

// Streams returns how many interleaved streams a version processes.
func streamsOf(version int) int {
	if version == 1 {
		return 1
	}
	return 16
}

// unrollOf returns the loop unroll factor of a version (Table 1 row
// "Loop Unroll Factor": versions 3, 4, 5 unroll 2, 3, 4 times).
func unrollOf(version int) int {
	switch version {
	case 3:
		return 2
	case 4:
		return 3
	case 5:
		return 4
	default:
		return 1
	}
}

// windowOf models the compiler's scheduling scope — how far ahead of
// the oldest unretired instruction the pre-RA scheduler pulls
// independent work. Larger unroll factors expose proportionally more
// independent gather chains, which the compiler interleaves; the
// windows below are calibrated so the emergent register pressure
// reproduces GCC 4.0.2's observed profile in Table 1 (40 / 81 / 124 /
// spill): pressure grows roughly as window/8 chains x 3 live temps on
// top of the 34 persistent stream registers.
func windowOf(version int) int {
	switch version {
	case 1:
		return 0 // hand-pipelined scalar loop; no reordering
	case 2:
		return 16
	case 3:
		return 160
	case 4:
		return 288
	default:
		return 640
	}
}

// buildKernel emits the version's kernel program.
func buildKernel(cfg kernelCfg) (*spu.Program, error) {
	switch {
	case cfg.version == 1:
		return buildScalarKernel(cfg)
	case cfg.version >= 2 && cfg.version <= 5:
		return buildSIMDKernel(cfg)
	default:
		return nil, fmt.Errorf("tile: unknown implementation version %d", cfg.version)
	}
}

// buildScalarKernel is "Implementation version 1" of Table 1: a
// sequential acceptor processing one stream, one byte per transition.
// The loop is software-pipelined one byte ahead (extract the next
// input symbol while the current STT load is in flight), which is the
// schedule a compiler produces for this loop and what yields the
// paper's ~19 cycles per transition.
func buildScalarKernel(cfg kernelCfg) (*spu.Program, error) {
	if cfg.transitions < 1 || cfg.transitions > 32767 {
		return nil, fmt.Errorf("tile: scalar trip count %d out of range", cfg.transitions)
	}
	b := spuasm.NewBuilder()
	inPtr := b.NewReg("inPtr")
	state := b.NewReg("state")
	count := b.NewReg("count")
	rem := b.NewReg("rem")
	qin := b.NewReg("qin")
	byt := b.NewReg("byt")
	off := b.NewReg("off")
	addr := b.NewReg("addr")
	e := b.NewReg("e")
	e2 := b.NewReg("e2")
	f := b.NewReg("f")

	b.ILA(inPtr, int32(cfg.inputBase))
	// The DFA state lives in the local-store state area across buffer
	// swaps, so matches spanning block boundaries are preserved.
	sbase := b.NewReg("sbase")
	b.ILA(sbase, int32(cfg.stateBase))
	b.LQD(state, sbase, 0)
	b.IL(count, 0)
	b.IL(rem, int32(cfg.transitions))
	// Prologue: extract the row offset of byte 0. The addressed byte
	// lands in the top byte of the preferred word, so a single
	// logical shift right by 22 yields sym*4 directly.
	b.LQD(qin, inPtr, 0)
	b.ROTQBY(byt, qin, inPtr)
	b.ROTMI(off, byt, 22)

	b.Label("loop")
	// Current transition: table walk using the pre-extracted offset.
	b.A(addr, state, off)
	b.LQD(e, addr, 0)
	// While the STT load is in flight: fetch the next input byte.
	b.AI(inPtr, inPtr, 1)
	b.LQD(qin, inPtr, 0)
	b.ROTQBY(byt, qin, inPtr)
	// Consume the entry as soon as it arrives; finish extracting the
	// next symbol's offset in the shadow of the dependent ANDs.
	b.ROTQBY(e2, e, addr)
	b.ROTMI(off, byt, 22)
	b.ANDI(state, e2, -2)
	b.ANDI(f, e2, 1)
	b.A(count, count, f)
	b.AI(rem, rem, -1)
	b.BRNZ(rem, "loop", true)

	b.STQD(count, mkBase(b, cfg.countsOut), 0)
	b.STQD(state, sbase, 0)
	b.STOP()
	return b.Assemble(spuasm.Options{
		Window:    windowOf(1),
		SpillBase: cfg.spillBase,
		Name:      "dfa-v1-scalar",
	})
}

// mkBase materializes an LS address in a fresh register.
func mkBase(b *spuasm.Builder, addr uint32) spuasm.VReg {
	r := b.NewReg("base")
	b.ILA(r, int32(addr))
	return r
}

// buildSIMDKernel emits versions 2-5 of Table 1: sixteen DFAs over
// sixteen byte-interleaved streams sharing one STT, with the loop body
// unrolled 1, 2, 3 or 4 times. The data flow per quadword is exactly
// Figure 4 of the paper, including the sixteen resident shuffle
// patterns ("16 loads (and shuffles)") that extract each stream's
// offset into the preferred slot in one instruction:
//
//	lqd    qin            ; 16 input symbols, one per stream
//	shli   t, qin, 2      ; SIMD shift left: per-byte offsets sym*4
//	andbi  offs, t, 0xFC  ; confine each offset to its byte
//	per stream i (SISD, scalar-in-vector):
//	  shufb  o, offs, offs, pat_i ; offset byte i -> preferred slot
//	  a      addr, state_i, o
//	  lqd    e, 0(addr)           ; gather the STT entry
//	  rotqby e, e, addr
//	  andi   state_i, e, -2       ; & 0xFFFFFFFE: next row pointer
//	  andi   f, e, 1              ; & 0x00000001: final-state flag
//	  a      count_i, count_i, f
func buildSIMDKernel(cfg kernelCfg) (*spu.Program, error) {
	unroll := unrollOf(cfg.version)
	if cfg.transitions < 1 {
		return nil, fmt.Errorf("tile: no quadwords to process")
	}
	if cfg.transitions%unroll != 0 {
		return nil, fmt.Errorf("tile: %d quadwords not a multiple of unroll %d",
			cfg.transitions, unroll)
	}
	trips := cfg.transitions / unroll
	if trips > 32767 {
		return nil, fmt.Errorf("tile: trip count %d out of IL range", trips)
	}
	b := spuasm.NewBuilder()
	inPtr := b.NewReg("inPtr")
	rem := b.NewReg("rem")
	states := b.NewRegs("state", 16)
	counts := b.NewRegs("count", 16)
	pats := b.NewRegs("pat", 16)

	b.ILA(inPtr, int32(cfg.inputBase))
	b.IL(rem, int32(trips))
	pbase := b.NewReg("pbase")
	b.ILA(pbase, int32(cfg.patternBase))
	sbase := b.NewReg("sbase")
	b.ILA(sbase, int32(cfg.stateBase))
	for i := 0; i < 16; i++ {
		b.LQD(states[i], sbase, int32(16*i))
		b.IL(counts[i], 0)
		b.LQD(pats[i], pbase, int32(16*i))
	}

	b.Label("loop")
	for g := 0; g < unroll; g++ {
		qin := b.NewReg(fmt.Sprintf("qin%d", g))
		sh := b.NewReg(fmt.Sprintf("sh%d", g))
		offs := b.NewReg(fmt.Sprintf("offs%d", g))
		b.LQD(qin, inPtr, int32(16*g))
		b.SHLI(sh, qin, 2)
		b.ANDBI(offs, sh, 0xFC)
		for i := 0; i < 16; i++ {
			o := b.NewReg(fmt.Sprintf("o%d_%d", g, i))
			addr := b.NewReg(fmt.Sprintf("ad%d_%d", g, i))
			e := b.NewReg(fmt.Sprintf("e%d_%d", g, i))
			e2 := b.NewReg(fmt.Sprintf("e2_%d_%d", g, i))
			f := b.NewReg(fmt.Sprintf("f%d_%d", g, i))
			b.SHUFB(o, offs, offs, pats[i])
			b.A(addr, states[i], o)
			b.LQD(e, addr, 0)
			b.ROTQBY(e2, e, addr)
			b.ANDI(states[i], e2, -2)
			b.ANDI(f, e2, 1)
			b.A(counts[i], counts[i], f)
		}
	}
	b.AI(inPtr, inPtr, int32(16*unroll))
	b.AI(rem, rem, -1)
	b.BRNZ(rem, "loop", true)

	out := mkBase(b, cfg.countsOut)
	for i := 0; i < 16; i++ {
		b.STQD(counts[i], out, int32(16*i))
		b.STQD(states[i], sbase, int32(16*i))
	}
	b.STOP()
	return b.Assemble(spuasm.Options{
		Window:    windowOf(cfg.version),
		SpillBase: cfg.spillBase,
		Name:      fmt.Sprintf("dfa-v%d-simd-u%d", cfg.version, unroll),
	})
}

// InstructionMix tallies the static opcode classes of a program, which
// regenerates the Figure 4 "which operations are SIMD vs SISD" view.
type InstructionMix struct {
	Loads, Stores   int
	SIMDArith       int // word/byte-parallel even-pipe ops
	ScalarArith     int // preferred-slot (SISD) arithmetic
	Shuffles        int // odd-pipe byte permutes
	Branches, Other int
}

// MixOf classifies a program's static instructions. The SISD/SIMD
// split follows the paper's convention: operations whose result is
// only meaningful in the preferred slot are SISD even though the
// hardware executes them across all lanes.
func MixOf(p *spu.Program, scalarRegs map[uint8]bool) InstructionMix {
	var m InstructionMix
	for _, in := range p.Code {
		switch {
		case in.Op == spu.OpLQD || in.Op == spu.OpLQX:
			m.Loads++
		case in.Op == spu.OpSTQD || in.Op == spu.OpSTQX:
			m.Stores++
		case spu.IsBranch(in.Op):
			m.Branches++
		case in.Op == spu.OpSHUFB || in.Op == spu.OpROTQBY || in.Op == spu.OpROTQBYI:
			m.Shuffles++
		case spu.PipeOf(in.Op) == spu.Even:
			if scalarRegs != nil && scalarRegs[in.Rt] {
				m.ScalarArith++
			} else {
				m.SIMDArith++
			}
		default:
			m.Other++
		}
	}
	return m
}
