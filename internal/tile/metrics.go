package tile

import (
	"fmt"
	"math/rand"

	"cellmatch/internal/dfa"
	"cellmatch/internal/spu"
)

// Table1Row is one column of the paper's Table 1 ("The highest
// performance is obtained with SIMDization and accurate loop
// unrolling").
type Table1Row struct {
	Version             int
	SIMD                bool
	Unroll              int
	TotalCycles         int64
	Transitions         int64
	CyclesPerTransition float64
	MTransPerSec        float64
	ThroughputGbps      float64
	CPI                 float64
	DualIssuePct        float64
	StallPct            float64
	RegistersUsed       int
	Spilled             bool
	Speedup             float64
}

// table1BlockBytes returns the measurement block for a version: the
// largest multiple of the version's granularity not exceeding the
// 16 KB buffer (the paper used 16384 or the nearest unroll multiple).
func table1BlockBytes(version int, bufBytes int) int {
	g := 16 * unrollOf(version)
	if version == 1 {
		g = 1
	}
	return bufBytes / g * g
}

// MeasureVersion runs one Table 1 measurement: the given version over
// one input block of (approximately) blockBytes random symbols.
// Content does not matter: DFA matching is content-independent, which
// the paper leans on and TestContentIndependence verifies.
func MeasureVersion(d *dfa.DFA, version int, blockBytes int, seed int64) (Table1Row, error) {
	t, err := New(d, Config{Version: version, BufBytes: uint32(blockBytes)})
	if err != nil {
		return Table1Row{}, err
	}
	n := table1BlockBytes(version, blockBytes)
	block := randomSymbols(n, d.Syms, seed)
	counts, prof, err := t.MatchBlockSim(block)
	if err != nil {
		return Table1Row{}, err
	}
	// Cross-check against the native oracle: a kernel that miscounts
	// must never produce a performance number.
	native, err := t.MatchBlockNative(block)
	if err != nil {
		return Table1Row{}, err
	}
	for i := range counts {
		if counts[i] != native[i] {
			return Table1Row{}, fmt.Errorf(
				"tile: v%d kernel stream %d counted %d, oracle %d",
				version, i, counts[i], native[i])
		}
	}
	transitions := int64(n)
	cpt := prof.CyclesPer(transitions)
	row := Table1Row{
		Version:             version,
		SIMD:                version >= 2,
		Unroll:              unrollOf(version),
		TotalCycles:         prof.Cycles,
		Transitions:         transitions,
		CyclesPerTransition: cpt,
		MTransPerSec:        spu.TransitionsPerSecond(cpt) / 1e6,
		ThroughputGbps:      spu.ThroughputGbps(cpt),
		CPI:                 prof.CPI(),
		DualIssuePct:        prof.DualIssuePct(),
		StallPct:            prof.StallPct(),
		RegistersUsed:       t.LastProgram.RegsUsed,
		Spilled:             t.LastProgram.Spills > 0,
	}
	return row, nil
}

// MeasureTable1 regenerates the full Table 1 for the given DFA: all
// five implementation versions with speedups relative to version 1.
func MeasureTable1(d *dfa.DFA, blockBytes int, seed int64) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, 5)
	for v := 1; v <= 5; v++ {
		row, err := MeasureVersion(d, v, blockBytes, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	base := rows[0].CyclesPerTransition
	for i := range rows {
		rows[i].Speedup = base / rows[i].CyclesPerTransition
	}
	return rows, nil
}

// randomSymbols produces n deterministic reduced symbols in [0, syms).
func randomSymbols(n, syms int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(syms))
	}
	return out
}

// BestVersion returns the Table 1 row with the lowest cycles per
// transition — the paper's conclusion is that this is version 4
// (unroll factor 3).
func BestVersion(rows []Table1Row) Table1Row {
	best := rows[0]
	for _, r := range rows[1:] {
		if r.CyclesPerTransition < best.CyclesPerTransition {
			best = r
		}
	}
	return best
}
