package tile

import (
	"fmt"

	"cellmatch/internal/stt"
)

// The native matchers are the production-path equivalents of the SPU
// kernels: plain Go running over the identical encoded STT bytes. The
// interleaved matcher is the library's fast path (the paper's insight
// that sixteen independent cursors hide the lookup latency applies to
// modern superscalar hosts as well); the scalar matcher is both the
// baseline and the differential-testing oracle.

// ScalarCount scans one reduced-symbol stream and counts transitions
// into final states (the paper's kernel semantics).
func ScalarCount(tab *stt.Table, input []byte) uint64 {
	n, _ := ScalarCountFrom(tab, input, tab.StartPtr()&stt.PtrMask)
	return n
}

// ScalarCountFrom is ScalarCount with state carry: the scan starts at
// the given encoded state pointer and returns the final pointer.
func ScalarCountFrom(tab *stt.Table, input []byte, cur uint32) (uint64, uint32) {
	cur &= stt.PtrMask
	var count uint64
	for _, c := range input {
		e := tab.Lookup(cur, c)
		count += uint64(e & stt.FlagFinal)
		cur = e & stt.PtrMask
	}
	return count, cur
}

// InterleavedCount16 scans a byte-interleaved block (stream i owns
// bytes i, i+16, i+32, ...) with sixteen concurrent cursors sharing the
// table, and returns the per-stream final-entry counts. The block
// length must be a multiple of 16.
func InterleavedCount16(tab *stt.Table, block []byte) ([16]uint64, error) {
	var cur [16]uint32
	start := tab.StartPtr() & stt.PtrMask
	for i := range cur {
		cur[i] = start
	}
	return InterleavedCount16From(tab, block, &cur)
}

// InterleavedCount16From is InterleavedCount16 with state carry: cur
// holds the per-stream encoded state pointers and is updated in place.
func InterleavedCount16From(tab *stt.Table, block []byte, cur *[16]uint32) ([16]uint64, error) {
	var counts [16]uint64
	if len(block)%16 != 0 {
		return counts, fmt.Errorf("tile: interleaved block length %d not a multiple of 16", len(block))
	}
	data := tab.Data
	base := tab.Base
	for q := 0; q < len(block); q += 16 {
		qw := block[q : q+16]
		for i := 0; i < 16; i++ {
			e := data[(cur[i]&stt.PtrMask-base)>>2+uint32(qw[i])]
			counts[i] += uint64(e & stt.FlagFinal)
			cur[i] = e & stt.PtrMask
		}
	}
	return counts, nil
}

// InterleavedCount16Unrolled is the unroll-by-3 variant mirroring the
// paper's optimal V4 structure, used by the ablation benchmarks. The
// block length must be a multiple of 48.
func InterleavedCount16Unrolled(tab *stt.Table, block []byte) ([16]uint64, error) {
	var counts [16]uint64
	if len(block)%48 != 0 {
		return counts, fmt.Errorf("tile: block length %d not a multiple of 48", len(block))
	}
	var cur [16]uint32
	start := tab.StartPtr() & stt.PtrMask
	for i := range cur {
		cur[i] = start
	}
	data := tab.Data
	base := tab.Base
	for q := 0; q < len(block); q += 48 {
		a := block[q : q+16]
		bq := block[q+16 : q+32]
		cq := block[q+32 : q+48]
		for i := 0; i < 16; i++ {
			e := data[(cur[i]-base)>>2+uint32(a[i])]
			counts[i] += uint64(e & stt.FlagFinal)
			p := e & stt.PtrMask
			e = data[(p-base)>>2+uint32(bq[i])]
			counts[i] += uint64(e & stt.FlagFinal)
			p = e & stt.PtrMask
			e = data[(p-base)>>2+uint32(cq[i])]
			counts[i] += uint64(e & stt.FlagFinal)
			cur[i] = e & stt.PtrMask
		}
	}
	return counts, nil
}

// IndexedCount is the ablation baseline for the paper's pointer
// encoding: states as indices, with the shift/multiply and separate
// final-flag lookup the pointer trick eliminates.
func IndexedCount(next []int32, accept []bool, syms int, start int, input []byte) uint64 {
	var count uint64
	s := start
	for _, c := range input {
		s = int(next[s*syms+int(c)])
		if accept[s] {
			count++
		}
	}
	return count
}
