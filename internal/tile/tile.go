// Package tile implements the paper's central abstraction (Section 3):
// the DFA tile, "the implementation of a DFA acceptor realized on a
// single SPE, with a state transition table which fits the local
// store".
//
// A Tile owns a simulated SPU whose local store is laid out per
// Figure 3 (STT + two input buffers + code/stack), a generated kernel
// in one of the paper's five implementation versions (Table 1), and
// native-Go equivalents of the same scan used as the production fast
// path and as the differential-testing oracle.
package tile

import (
	"fmt"

	"cellmatch/internal/dfa"
	"cellmatch/internal/localstore"
	"cellmatch/internal/spu"
	"cellmatch/internal/stt"
)

// Config selects a tile implementation.
type Config struct {
	// Version is the Table 1 implementation version (1 scalar, 2 SIMD,
	// 3-5 SIMD unrolled 2/3/4). Default 4, the paper's optimum.
	Version int
	// BufBytes is one input buffer's size (Figure 3: 4/8/16 KB).
	// Default 16 KB.
	BufBytes uint32
	// Width is the STT row width in symbols. Default 32.
	Width int
}

func (c *Config) setDefaults(syms int) {
	if c.Version == 0 {
		c.Version = 4
	}
	if c.BufBytes == 0 {
		c.BufBytes = 16 * 1024
	}
	if c.Width == 0 {
		c.Width = 32
		for c.Width < syms {
			c.Width *= 2
		}
	}
}

// Tile is one DFA acceptor mapped onto one (simulated) SPE.
type Tile struct {
	DFA    *dfa.DFA
	Table  *stt.Table
	Plan   localstore.TilePlan
	Layout *localstore.Layout
	CPU    *spu.CPU
	Cfg    Config

	input0, input1 uint32
	countsOut      uint32
	patternBase    uint32
	stateBase      uint32
	spillBase      uint32

	progs map[int]*spu.Program // keyed by block length
	// LastProgram is the kernel most recently executed, exposed for
	// metric extraction (register counts, spills, instruction mix).
	LastProgram *spu.Program
}

// New builds a tile for the DFA, checking it obeys the Figure 3 state
// budget for the chosen buffer size.
func New(d *dfa.DFA, cfg Config) (*Tile, error) {
	cfg.setDefaults(d.Syms)
	if cfg.Version < 1 || cfg.Version > 5 {
		return nil, fmt.Errorf("tile: version %d out of range 1-5", cfg.Version)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if cfg.Version >= 2 && cfg.Width > 64 {
		// The Figure 4 kernel extracts per-byte offsets sym*4, which
		// only fit a byte for alphabets up to 64 symbols. The paper's
		// regime is 32; wider dictionaries must use the scalar kernel
		// or the native matchers.
		return nil, fmt.Errorf(
			"tile: SIMD kernels support at most 64 symbols, alphabet needs width %d", cfg.Width)
	}
	plan, err := localstore.PlanTile(cfg.BufBytes, uint32(cfg.Width)*4)
	if err != nil {
		return nil, err
	}
	if d.NumStates() > plan.MaxStates {
		return nil, fmt.Errorf(
			"tile: DFA has %d states; at most %d fit with %d KB buffers (Figure 3)",
			d.NumStates(), plan.MaxStates, cfg.BufBytes/1024)
	}
	layout, err := localstore.BuildTileLayout(plan)
	if err != nil {
		return nil, err
	}
	sttRegion, _ := layout.Lookup("stt")
	in0, _ := layout.Lookup("input0")
	in1, _ := layout.Lookup("input1")
	code, _ := layout.Lookup("code+stack")
	tab, err := stt.Encode(d, cfg.Width, sttRegion.Addr)
	if err != nil {
		return nil, err
	}
	if err := tab.Validate(); err != nil {
		return nil, err
	}
	cpu := spu.New()
	cpu.WriteLS(sttRegion.Addr, tab.Bytes())
	t := &Tile{
		DFA:         d,
		Table:       tab,
		Plan:        plan,
		Layout:      layout,
		CPU:         cpu,
		Cfg:         cfg,
		input0:      in0.Addr,
		input1:      in1.Addr,
		countsOut:   code.Addr,
		patternBase: code.Addr + 256,
		stateBase:   code.Addr + 512,
		spillBase:   code.Addr + 1024,
		progs:       map[int]*spu.Program{},
	}
	cpu.WriteLS(t.patternBase, PatternTable())
	return t, nil
}

// Streams returns the number of concurrent input streams the tile's
// kernel processes (1 for the scalar version, 16 for SIMD versions).
func (t *Tile) Streams() int { return streamsOf(t.Cfg.Version) }

// Unroll returns the kernel's loop unroll factor.
func (t *Tile) Unroll() int { return unrollOf(t.Cfg.Version) }

// BlockGranularity is the required block-length multiple.
func (t *Tile) BlockGranularity() int {
	if t.Cfg.Version == 1 {
		return 1
	}
	return 16 * unrollOf(t.Cfg.Version)
}

// program returns (building if needed) the kernel for a block length.
func (t *Tile) program(blockLen int) (*spu.Program, error) {
	if p, ok := t.progs[blockLen]; ok {
		return p, nil
	}
	cfg := kernelCfg{
		version:     t.Cfg.Version,
		inputBase:   t.input0,
		startPtr:    t.Table.StartPtr(),
		countsOut:   t.countsOut,
		spillBase:   t.spillBase,
		patternBase: t.patternBase,
		stateBase:   t.stateBase,
	}
	if t.Cfg.Version == 1 {
		cfg.transitions = blockLen
	} else {
		cfg.transitions = blockLen / 16 // quadwords
	}
	p, err := buildKernel(cfg)
	if err != nil {
		return nil, err
	}
	t.progs[blockLen] = p
	return p, nil
}

// StartStates returns the per-stream initial state pointers.
func (t *Tile) StartStates() []uint32 {
	n := t.Streams()
	out := make([]uint32, n)
	start := t.Table.StartPtr() & stt.PtrMask
	for i := range out {
		out[i] = start
	}
	return out
}

// MatchBlockSim runs the SPU kernel over one input block already
// reduced to tile symbols (and byte-interleaved for SIMD versions),
// starting every stream from the DFA's start state. It returns the
// per-stream final-entry counts and the cycle-accurate profile.
func (t *Tile) MatchBlockSim(block []byte) ([]uint64, spu.Profile, error) {
	counts, _, prof, err := t.MatchBlockSimCarry(block, t.StartStates())
	return counts, prof, err
}

// MatchBlockSimCarry is MatchBlockSim with explicit state carry: the
// scan starts from the given per-stream state pointers and returns the
// final pointers, so consecutive buffers of the same streams preserve
// matches spanning block boundaries (the kernel keeps its DFA states
// live across buffer swaps, exactly as the paper's tile does).
func (t *Tile) MatchBlockSimCarry(block []byte, states []uint32) ([]uint64, []uint32, spu.Profile, error) {
	if len(block) == 0 || len(block) > int(t.Plan.BufBytes) {
		return nil, nil, spu.Profile{}, fmt.Errorf(
			"tile: block of %d bytes does not fit the %d byte input buffer",
			len(block), t.Plan.BufBytes)
	}
	if g := t.BlockGranularity(); len(block)%g != 0 {
		return nil, nil, spu.Profile{}, fmt.Errorf(
			"tile: block length %d not a multiple of %d (16 streams x unroll %d)",
			len(block), g, t.Unroll())
	}
	n := t.Streams()
	if len(states) != n {
		return nil, nil, spu.Profile{}, fmt.Errorf(
			"tile: %d carry states for %d streams", len(states), n)
	}
	p, err := t.program(len(block))
	if err != nil {
		return nil, nil, spu.Profile{}, err
	}
	t.LastProgram = p
	t.CPU.Reset()
	t.CPU.WriteLS(t.input0, block)
	stateImg := make([]byte, 16*n)
	for i, s := range states {
		s &= stt.PtrMask
		stateImg[i*16+0] = byte(s >> 24)
		stateImg[i*16+1] = byte(s >> 16)
		stateImg[i*16+2] = byte(s >> 8)
		stateImg[i*16+3] = byte(s)
	}
	t.CPU.WriteLS(t.stateBase, stateImg)
	if err := t.CPU.Run(p); err != nil {
		return nil, nil, spu.Profile{}, err
	}
	if err := t.CPU.Prof.Check(); err != nil {
		return nil, nil, spu.Profile{}, err
	}
	counts := make([]uint64, n)
	outStates := make([]uint32, n)
	for i := 0; i < n; i++ {
		q := t.CPU.ReadLS(t.countsOut+uint32(16*i), 4)
		counts[i] = uint64(q[0])<<24 | uint64(q[1])<<16 | uint64(q[2])<<8 | uint64(q[3])
		sq := t.CPU.ReadLS(t.stateBase+uint32(16*i), 4)
		outStates[i] = uint32(sq[0])<<24 | uint32(sq[1])<<16 | uint32(sq[2])<<8 | uint32(sq[3])
	}
	return counts, outStates, t.CPU.Prof, nil
}

// MatchBlockNative scans the same block with the native fast path,
// returning per-stream counts. For the scalar version the single
// stream is the block itself; for SIMD versions the block is
// interleaved.
func (t *Tile) MatchBlockNative(block []byte) ([]uint64, error) {
	if t.Cfg.Version == 1 {
		return []uint64{ScalarCount(t.Table, block)}, nil
	}
	counts, err := InterleavedCount16(t.Table, block)
	if err != nil {
		return nil, err
	}
	return counts[:], nil
}
