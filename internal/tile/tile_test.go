package tile

import (
	"math/rand"
	"testing"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/dfa"
)

// chainDict builds a dictionary whose AC automaton has roughly the
// requested number of states (long non-overlapping chains).
func chainDict(t *testing.T, states int) *dfa.DFA {
	t.Helper()
	red := alphabet.CaseFold32()
	var pats [][]byte
	per := 25
	for n := 1; n < states; n += per {
		p := make([]byte, per)
		seed := len(pats)
		// Distinct two-symbol prefix per pattern so tries share at most
		// one node; the state count tracks the target closely.
		p[0] = byte('A' + seed%26)
		p[1] = byte('A' + (seed/26)%26)
		for j := 2; j < per; j++ {
			p[j] = byte('A' + (seed*3+j)%26)
		}
		pats = append(pats, p)
	}
	d, err := dfa.FromPatterns(pats, red)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func smallDict(t *testing.T) *dfa.DFA {
	t.Helper()
	red := alphabet.CaseFold32()
	d, err := dfa.FromPatterns([][]byte{
		[]byte("VIRUS"), []byte("WORM"), []byte("ATTACK"), []byte("AB"),
	}, red)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func randomBlock(n, syms int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(syms))
	}
	return out
}

// TestKernelMatchesOracleAllVersions is the central differential test:
// every kernel version must count exactly what the native matcher
// counts, which itself is tested against the DFA oracle elsewhere.
func TestKernelMatchesOracleAllVersions(t *testing.T) {
	d := smallDict(t)
	for v := 1; v <= 5; v++ {
		tl, err := New(d, Config{Version: v})
		if err != nil {
			t.Fatal(err)
		}
		g := tl.BlockGranularity()
		for _, blocks := range []int{1, 3, 7} {
			n := blocks * g * 16
			if v == 1 {
				n = blocks * 512
			}
			block := randomBlock(n, d.Syms, int64(v*100+blocks))
			sim, _, err := tl.MatchBlockSim(block)
			if err != nil {
				t.Fatalf("v%d n=%d: %v", v, n, err)
			}
			native, err := tl.MatchBlockNative(block)
			if err != nil {
				t.Fatal(err)
			}
			if len(sim) != len(native) {
				t.Fatalf("v%d: stream count %d vs %d", v, len(sim), len(native))
			}
			for i := range sim {
				if sim[i] != native[i] {
					t.Fatalf("v%d n=%d stream %d: sim %d native %d", v, n, i, sim[i], native[i])
				}
			}
		}
	}
}

// TestInterleavedMatchesPerStreamScalar deinterleaves and checks each
// stream against both the scalar table scan and the DFA itself.
func TestInterleavedMatchesPerStreamScalar(t *testing.T) {
	d := smallDict(t)
	tl, err := New(d, Config{Version: 2})
	if err != nil {
		t.Fatal(err)
	}
	block := randomBlock(16*64, d.Syms, 9)
	counts, err := InterleavedCount16(tl.Table, block)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		var stream []byte
		for p := i; p < len(block); p += 16 {
			stream = append(stream, block[p])
		}
		if got := ScalarCount(tl.Table, stream); got != counts[i] {
			t.Fatalf("stream %d: interleaved %d scalar %d", i, counts[i], got)
		}
		if got := d.CountFinalEntries(stream); got != int(counts[i]) {
			t.Fatalf("stream %d: interleaved %d dfa %d", i, counts[i], got)
		}
	}
}

func TestUnrolledNativeMatches(t *testing.T) {
	d := smallDict(t)
	tl, err := New(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	block := randomBlock(48*20, d.Syms, 11)
	a, err := InterleavedCount16(tl.Table, block)
	if err != nil {
		t.Fatal(err)
	}
	b, err := InterleavedCount16Unrolled(tl.Table, block)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("unrolled native disagrees: %v vs %v", a, b)
	}
}

func TestBlockValidation(t *testing.T) {
	d := smallDict(t)
	tl, err := New(d, Config{Version: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tl.MatchBlockSim(nil); err == nil {
		t.Fatal("empty block accepted")
	}
	if _, _, err := tl.MatchBlockSim(make([]byte, 17)); err == nil {
		t.Fatal("non-multiple block accepted for unroll 3")
	}
	if _, _, err := tl.MatchBlockSim(make([]byte, 17*1024)); err == nil {
		t.Fatal("oversized block accepted")
	}
	if _, err := New(d, Config{Version: 9}); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestStateBudgetEnforced(t *testing.T) {
	// A 1712-state DFA fits 4 KB buffers but not... it fits; 1713 does
	// not. Build just over the 16 KB-buffer limit (1520).
	d := chainDict(t, 1600)
	if d.NumStates() <= 1520 || d.NumStates() > 1648 {
		t.Fatalf("test dictionary has %d states", d.NumStates())
	}
	if _, err := New(d, Config{BufBytes: 16 * 1024}); err == nil {
		t.Fatal("over-budget DFA accepted for 16 KB buffers")
	}
	if _, err := New(d, Config{BufBytes: 8 * 1024}); err != nil {
		t.Fatalf("DFA should fit 8 KB buffers (Figure 3 case 2): %v", err)
	}
}

func TestPatternTable(t *testing.T) {
	p := PatternTable()
	if len(p) != 256 {
		t.Fatalf("pattern table length %d", len(p))
	}
	for i := 0; i < 16; i++ {
		if p[i*16+3] != byte(i) {
			t.Fatalf("pattern %d selector = %#x", i, p[i*16+3])
		}
		for j := 0; j < 16; j++ {
			if j != 3 && p[i*16+j] != 0x80 {
				t.Fatalf("pattern %d byte %d = %#x", i, j, p[i*16+j])
			}
		}
	}
}

// TestTable1Shape pins the qualitative Table 1 claims to bands wide
// enough to survive model recalibration but tight enough to catch
// regressions. Paper values: 19.00 / 7.57 / 5.51 / 5.01 / 5.61
// cycles per transition; optimum at version 4 (unroll 3); version 5
// spills and loses; 5.11 Gbps peak.
func TestTable1Shape(t *testing.T) {
	d := chainDict(t, 1500)
	rows, err := MeasureTable1(d, 16384, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	v1, v2, v3, v4, v5 := rows[0], rows[1], rows[2], rows[3], rows[4]

	// Version 1: scalar, heavily stalled.
	if v1.CyclesPerTransition < 15 || v1.CyclesPerTransition > 30 {
		t.Errorf("v1 = %.2f cyc/tr, want ~19-23", v1.CyclesPerTransition)
	}
	if v1.StallPct < 30 {
		t.Errorf("v1 stall%% = %.1f, want heavy stalls", v1.StallPct)
	}
	if v1.SIMD || v1.RegistersUsed > 16 {
		t.Errorf("v1 shape wrong: simd=%v regs=%d", v1.SIMD, v1.RegistersUsed)
	}

	// Version 2: SIMDization speedup in the paper's ~2.5x band.
	if v2.Speedup < 2.0 || v2.Speedup > 4.0 {
		t.Errorf("v2 speedup = %.2f, want ~2.5-3", v2.Speedup)
	}
	if v2.CyclesPerTransition < 6 || v2.CyclesPerTransition > 11 {
		t.Errorf("v2 = %.2f cyc/tr, want ~7.6", v2.CyclesPerTransition)
	}

	// Unrolling improves monotonically up to the optimum at unroll 3.
	if !(v3.CyclesPerTransition < v2.CyclesPerTransition) {
		t.Errorf("unroll 2 (%.2f) not faster than unroll 1 (%.2f)",
			v3.CyclesPerTransition, v2.CyclesPerTransition)
	}
	if !(v4.CyclesPerTransition < v3.CyclesPerTransition) {
		t.Errorf("unroll 3 (%.2f) not faster than unroll 2 (%.2f)",
			v4.CyclesPerTransition, v3.CyclesPerTransition)
	}
	if best := BestVersion(rows); best.Version != 4 {
		t.Errorf("optimal version = %d, paper says 4", best.Version)
	}
	if v4.CyclesPerTransition < 4.0 || v4.CyclesPerTransition > 6.0 {
		t.Errorf("v4 = %.2f cyc/tr, want ~5", v4.CyclesPerTransition)
	}
	if v4.ThroughputGbps < 4.4 || v4.ThroughputGbps > 6.2 {
		t.Errorf("v4 = %.2f Gbps, want ~5.11", v4.ThroughputGbps)
	}
	if v4.StallPct > 10 {
		t.Errorf("v4 stall%% = %.1f, unrolling should remove stalls", v4.StallPct)
	}
	if v4.DualIssuePct < 40 {
		t.Errorf("v4 dual%% = %.1f, want ~50", v4.DualIssuePct)
	}
	if v4.CPI > 0.85 {
		t.Errorf("v4 CPI = %.2f, want ~0.65", v4.CPI)
	}

	// Version 5: register spills make it lose to version 4.
	if !v5.Spilled {
		t.Error("v5 did not spill")
	}
	if !(v5.CyclesPerTransition > v4.CyclesPerTransition) {
		t.Errorf("v5 (%.2f) should be slower than v4 (%.2f)",
			v5.CyclesPerTransition, v4.CyclesPerTransition)
	}

	// Register pressure climbs with unrolling (paper: 40/81/124).
	if !(v2.RegistersUsed < v3.RegistersUsed && v3.RegistersUsed < v4.RegistersUsed) {
		t.Errorf("register pressure not increasing: %d/%d/%d",
			v2.RegistersUsed, v3.RegistersUsed, v4.RegistersUsed)
	}
}

// TestContentIndependence verifies the security property the paper
// bases its algorithm choice on: cycle counts do not depend on input
// content (within a small branch-free tolerance).
func TestContentIndependence(t *testing.T) {
	d := smallDict(t)
	tl, err := New(d, Config{Version: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := 48 * 64
	var cycles []int64
	for seed := int64(0); seed < 3; seed++ {
		block := randomBlock(n, d.Syms, seed)
		_, prof, err := tl.MatchBlockSim(block)
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, prof.Cycles)
	}
	// Adversarial block: all the same symbol, maximal match density.
	worst := make([]byte, n)
	for i := range worst {
		worst[i] = 1
	}
	_, prof, err := tl.MatchBlockSim(worst)
	if err != nil {
		t.Fatal(err)
	}
	cycles = append(cycles, prof.Cycles)
	for _, c := range cycles[1:] {
		if c != cycles[0] {
			t.Fatalf("cycle count depends on content: %v", cycles)
		}
	}
}

func TestMixOfClassification(t *testing.T) {
	d := smallDict(t)
	tl, err := New(d, Config{Version: 2})
	if err != nil {
		t.Fatal(err)
	}
	block := randomBlock(16*16, d.Syms, 1)
	if _, _, err := tl.MatchBlockSim(block); err != nil {
		t.Fatal(err)
	}
	mix := MixOf(tl.LastProgram, nil)
	if mix.Loads == 0 || mix.Shuffles == 0 || mix.SIMDArith == 0 {
		t.Fatalf("mix looks wrong: %+v", mix)
	}
	if mix.Branches == 0 {
		t.Fatal("no branch in a loop kernel")
	}
}

func TestStreamsAndGranularity(t *testing.T) {
	d := smallDict(t)
	cases := []struct {
		version, streams, gran int
	}{
		{1, 1, 1}, {2, 16, 16}, {3, 16, 32}, {4, 16, 48}, {5, 16, 64},
	}
	for _, c := range cases {
		tl, err := New(d, Config{Version: c.version})
		if err != nil {
			t.Fatal(err)
		}
		if tl.Streams() != c.streams {
			t.Errorf("v%d streams = %d", c.version, tl.Streams())
		}
		if tl.BlockGranularity() != c.gran {
			t.Errorf("v%d granularity = %d", c.version, tl.BlockGranularity())
		}
	}
}

func TestProgramCaching(t *testing.T) {
	d := smallDict(t)
	tl, err := New(d, Config{Version: 2})
	if err != nil {
		t.Fatal(err)
	}
	block := randomBlock(256, d.Syms, 2)
	if _, _, err := tl.MatchBlockSim(block); err != nil {
		t.Fatal(err)
	}
	p1 := tl.LastProgram
	if _, _, err := tl.MatchBlockSim(block); err != nil {
		t.Fatal(err)
	}
	if tl.LastProgram != p1 {
		t.Fatal("program not cached across runs")
	}
}

func TestIndexedCountAgrees(t *testing.T) {
	d := smallDict(t)
	tl, err := New(d, Config{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	input := randomBlock(4096, d.Syms, 5)
	ptr := ScalarCount(tl.Table, input)
	idx := IndexedCount(d.Next, d.Accept, d.Syms, d.Start, input)
	if ptr != idx {
		t.Fatalf("pointer %d vs indexed %d", ptr, idx)
	}
}
