// Package v128 models the 128-bit SIMD registers of the Cell SPU.
//
// A Vec is sixteen bytes with the SPU's big-endian layout: byte 0 is the
// most significant byte of word 0, and word 0 (bytes 0-3) is the
// "preferred slot" used by scalar-in-vector operations. All word
// arithmetic operates on four independent 32-bit lanes, exactly like the
// SPU fixed-point unit, so the simulator in internal/spu can execute
// kernels with faithful data semantics.
package v128

import (
	"encoding/binary"
	"fmt"
)

// Vec is one 128-bit SPU register value.
type Vec [16]byte

// Zero is the all-zero vector.
var Zero Vec

// Word returns 32-bit lane i (0..3) in big-endian order.
func (v Vec) Word(i int) uint32 {
	return binary.BigEndian.Uint32(v[i*4 : i*4+4])
}

// SetWord sets 32-bit lane i (0..3).
func (v *Vec) SetWord(i int, x uint32) {
	binary.BigEndian.PutUint32(v[i*4:i*4+4], x)
}

// Preferred returns the preferred-slot scalar (word 0), which is where
// the SPU keeps scalar values inside vector registers.
func (v Vec) Preferred() uint32 { return v.Word(0) }

// SetPreferred stores x into the preferred slot, leaving other lanes
// untouched.
func (v *Vec) SetPreferred(x uint32) { v.SetWord(0, x) }

// SplatWord returns a vector with all four lanes equal to x.
func SplatWord(x uint32) Vec {
	var v Vec
	for i := 0; i < 4; i++ {
		v.SetWord(i, x)
	}
	return v
}

// SplatByte returns a vector with all sixteen bytes equal to b.
func SplatByte(b byte) Vec {
	var v Vec
	for i := range v {
		v[i] = b
	}
	return v
}

// FromWords builds a vector from four big-endian 32-bit lanes.
func FromWords(w0, w1, w2, w3 uint32) Vec {
	var v Vec
	v.SetWord(0, w0)
	v.SetWord(1, w1)
	v.SetWord(2, w2)
	v.SetWord(3, w3)
	return v
}

// FromBytes copies up to 16 bytes of b into a vector; missing bytes are
// zero.
func FromBytes(b []byte) Vec {
	var v Vec
	copy(v[:], b)
	return v
}

// Add32 adds the four 32-bit lanes independently (SPU "a").
func Add32(a, b Vec) Vec {
	var r Vec
	for i := 0; i < 4; i++ {
		r.SetWord(i, a.Word(i)+b.Word(i))
	}
	return r
}

// Sub32 subtracts lanes: r = a - b (SPU "sf" with operands swapped).
func Sub32(a, b Vec) Vec {
	var r Vec
	for i := 0; i < 4; i++ {
		r.SetWord(i, a.Word(i)-b.Word(i))
	}
	return r
}

// And is the bitwise AND of the full 128 bits.
func And(a, b Vec) Vec {
	var r Vec
	for i := range r {
		r[i] = a[i] & b[i]
	}
	return r
}

// AndC is a AND NOT b over the full 128 bits (SPU "andc").
func AndC(a, b Vec) Vec {
	var r Vec
	for i := range r {
		r[i] = a[i] &^ b[i]
	}
	return r
}

// Or is the bitwise OR of the full 128 bits.
func Or(a, b Vec) Vec {
	var r Vec
	for i := range r {
		r[i] = a[i] | b[i]
	}
	return r
}

// Xor is the bitwise XOR of the full 128 bits.
func Xor(a, b Vec) Vec {
	var r Vec
	for i := range r {
		r[i] = a[i] ^ b[i]
	}
	return r
}

// Shl32 shifts each 32-bit lane left by n (0..31). SPU "shli" semantics:
// shift amounts are taken modulo 64; amounts >= 32 produce zero.
func Shl32(a Vec, n uint) Vec {
	n &= 63
	var r Vec
	if n >= 32 {
		return r
	}
	for i := 0; i < 4; i++ {
		r.SetWord(i, a.Word(i)<<n)
	}
	return r
}

// Shr32 logically shifts each 32-bit lane right by n (SPU "rotmi" with a
// negative immediate).
func Shr32(a Vec, n uint) Vec {
	n &= 63
	var r Vec
	if n >= 32 {
		return r
	}
	for i := 0; i < 4; i++ {
		r.SetWord(i, a.Word(i)>>n)
	}
	return r
}

// RotByBytes rotates the whole quadword left by n bytes (SPU "rotqby").
// Byte i of the result is byte (i+n) mod 16 of the input.
func RotByBytes(a Vec, n int) Vec {
	n = ((n % 16) + 16) % 16
	var r Vec
	for i := 0; i < 16; i++ {
		r[i] = a[(i+n)%16]
	}
	return r
}

// Shuffle implements the SPU "shufb" instruction for the common case:
// each byte of pattern selects a byte from the 32-byte concatenation
// a||b (0-15 from a, 16-31 from b). The SPU's special constant-generating
// selector values are honored: 0b10xxxxxx -> 0x00, 0b110xxxxx -> 0xFF,
// 0b111xxxxx -> 0x80.
func Shuffle(a, b, pattern Vec) Vec {
	var r Vec
	for i := 0; i < 16; i++ {
		s := pattern[i]
		switch {
		case s&0xC0 == 0x80:
			r[i] = 0x00
		case s&0xE0 == 0xC0:
			r[i] = 0xFF
		case s&0xE0 == 0xE0:
			r[i] = 0x80
		default:
			k := s & 0x1F
			if k < 16 {
				r[i] = a[k]
			} else {
				r[i] = b[k-16]
			}
		}
	}
	return r
}

// CmpEq32 compares 32-bit lanes for equality, producing all-ones or
// all-zeros per lane (SPU "ceq").
func CmpEq32(a, b Vec) Vec {
	var r Vec
	for i := 0; i < 4; i++ {
		if a.Word(i) == b.Word(i) {
			r.SetWord(i, 0xFFFFFFFF)
		}
	}
	return r
}

// CmpGtU32 compares 32-bit lanes as unsigned a > b (SPU "clgt").
func CmpGtU32(a, b Vec) Vec {
	var r Vec
	for i := 0; i < 4; i++ {
		if a.Word(i) > b.Word(i) {
			r.SetWord(i, 0xFFFFFFFF)
		}
	}
	return r
}

// AddByte adds the sixteen byte lanes independently with wraparound.
func AddByte(a, b Vec) Vec {
	var r Vec
	for i := range r {
		r[i] = a[i] + b[i]
	}
	return r
}

// SumBytes returns the integer sum of all sixteen bytes, a helper used
// by tests and by match-count extraction.
func (v Vec) SumBytes() int {
	s := 0
	for _, b := range v {
		s += int(b)
	}
	return s
}

// SumWords returns the sum of the four 32-bit lanes.
func (v Vec) SumWords() uint64 {
	var s uint64
	for i := 0; i < 4; i++ {
		s += uint64(v.Word(i))
	}
	return s
}

// IsZero reports whether all 128 bits are zero.
func (v Vec) IsZero() bool { return v == Zero }

// String renders the vector as four hexadecimal words, the way SPU
// debuggers print registers.
func (v Vec) String() string {
	return fmt.Sprintf("%08x %08x %08x %08x", v.Word(0), v.Word(1), v.Word(2), v.Word(3))
}
