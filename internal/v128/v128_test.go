package v128

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWordRoundTrip(t *testing.T) {
	var v Vec
	v.SetWord(0, 0xDEADBEEF)
	v.SetWord(3, 0x01020304)
	if v.Word(0) != 0xDEADBEEF {
		t.Fatalf("word0 = %08x", v.Word(0))
	}
	if v.Word(3) != 0x01020304 {
		t.Fatalf("word3 = %08x", v.Word(3))
	}
	// Big-endian layout: byte 0 is the MSB of word 0.
	if v[0] != 0xDE || v[3] != 0xEF {
		t.Fatalf("layout not big-endian: % x", v[:4])
	}
}

func TestPreferredSlot(t *testing.T) {
	var v Vec
	v.SetPreferred(42)
	if v.Preferred() != 42 {
		t.Fatalf("preferred = %d", v.Preferred())
	}
	if v.Word(1) != 0 || v.Word(2) != 0 || v.Word(3) != 0 {
		t.Fatal("SetPreferred disturbed other lanes")
	}
}

func TestSplat(t *testing.T) {
	v := SplatWord(0xAABBCCDD)
	for i := 0; i < 4; i++ {
		if v.Word(i) != 0xAABBCCDD {
			t.Fatalf("lane %d = %08x", i, v.Word(i))
		}
	}
	b := SplatByte(0x5A)
	for i := range b {
		if b[i] != 0x5A {
			t.Fatalf("byte %d = %02x", i, b[i])
		}
	}
}

func TestAdd32Lanes(t *testing.T) {
	a := FromWords(1, 2, 3, 0xFFFFFFFF)
	b := FromWords(10, 20, 30, 1)
	r := Add32(a, b)
	want := FromWords(11, 22, 33, 0) // lane 3 wraps
	if r != want {
		t.Fatalf("got %v want %v", r, want)
	}
}

func TestSub32(t *testing.T) {
	a := FromWords(10, 0, 5, 100)
	b := FromWords(3, 1, 5, 100)
	r := Sub32(a, b)
	want := FromWords(7, 0xFFFFFFFF, 0, 0)
	if r != want {
		t.Fatalf("got %v want %v", r, want)
	}
}

func TestBitwise(t *testing.T) {
	a := SplatWord(0xF0F0F0F0)
	b := SplatWord(0x0FF00FF0)
	if And(a, b) != SplatWord(0x00F000F0) {
		t.Fatal("And")
	}
	if Or(a, b) != SplatWord(0xFFF0FFF0) {
		t.Fatal("Or")
	}
	if Xor(a, b) != SplatWord(0xFF00FF00) {
		t.Fatal("Xor")
	}
	if AndC(a, b) != SplatWord(0xF000F000) {
		t.Fatal("AndC")
	}
}

func TestShifts(t *testing.T) {
	a := FromWords(1, 0x80000000, 0xFFFF, 8)
	if got := Shl32(a, 1); got != FromWords(2, 0, 0x1FFFE, 16) {
		t.Fatalf("Shl32: %v", got)
	}
	if got := Shr32(a, 3); got != FromWords(0, 0x10000000, 0x1FFF, 1) {
		t.Fatalf("Shr32: %v", got)
	}
	// Shift >= 32 (SPU semantics, amount mod 64) zeroes the lane.
	if got := Shl32(a, 33); got != Zero {
		t.Fatalf("Shl32 by 33: %v", got)
	}
	if got := Shr32(a, 40); got != Zero {
		t.Fatalf("Shr32 by 40: %v", got)
	}
}

func TestShl32NoCrossByteGarbage(t *testing.T) {
	// The paper's kernel computes per-byte offsets sym<<2 by a word shift
	// followed by a byte mask; verify the identity for symbols < 32.
	var syms Vec
	for i := range syms {
		syms[i] = byte(i) // 0..15, all < 32
	}
	shifted := Shl32(syms, 2)
	masked := And(shifted, SplatByte(0xFC))
	for i := range masked {
		if masked[i] != syms[i]<<2 {
			t.Fatalf("byte %d: got %02x want %02x", i, masked[i], syms[i]<<2)
		}
	}
}

func TestRotByBytes(t *testing.T) {
	var v Vec
	for i := range v {
		v[i] = byte(i)
	}
	r := RotByBytes(v, 3)
	for i := 0; i < 16; i++ {
		if r[i] != byte((i+3)%16) {
			t.Fatalf("rot3 byte %d = %d", i, r[i])
		}
	}
	if RotByBytes(v, 16) != v {
		t.Fatal("rot16 should be identity")
	}
	if RotByBytes(v, -1) != RotByBytes(v, 15) {
		t.Fatal("negative rotation should wrap")
	}
}

func TestShuffleSelect(t *testing.T) {
	var a, b, p Vec
	for i := range a {
		a[i] = byte(i)        // 0..15
		b[i] = byte(0x40 + i) // 0x40..0x4F
		p[i] = byte(31 - i)   // picks b[15], b[14], ... a[1], a[0]
	}
	r := Shuffle(a, b, p)
	// p[0]=31 selects b[15]; p[15]=16 selects b[0]; p[8]=23 selects b[7].
	if r[0] != 0x4F || r[15] != 0x40 || r[8] != 0x47 {
		t.Fatalf("shuffle result %v", r)
	}
}

func TestShuffleSpecialSelectors(t *testing.T) {
	a := SplatByte(0x11)
	b := SplatByte(0x22)
	p := Vec{0x80, 0xC0, 0xE0, 0x00, 0x10, 0xBF, 0xDF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0}
	r := Shuffle(a, b, p)
	want := []byte{0x00, 0xFF, 0x80, 0x11, 0x22, 0x00, 0xFF, 0x80}
	for i, w := range want {
		if r[i] != w {
			t.Fatalf("selector %d: got %02x want %02x", i, r[i], w)
		}
	}
}

func TestCompare(t *testing.T) {
	a := FromWords(5, 6, 7, 8)
	b := FromWords(5, 0, 7, 9)
	eq := CmpEq32(a, b)
	if eq != FromWords(0xFFFFFFFF, 0, 0xFFFFFFFF, 0) {
		t.Fatalf("CmpEq32: %v", eq)
	}
	gt := CmpGtU32(a, b)
	if gt != FromWords(0, 0xFFFFFFFF, 0, 0) {
		t.Fatalf("CmpGtU32: %v", gt)
	}
}

func TestSums(t *testing.T) {
	v := FromWords(1, 2, 3, 4)
	if v.SumWords() != 10 {
		t.Fatalf("SumWords = %d", v.SumWords())
	}
	b := SplatByte(2)
	if b.SumBytes() != 32 {
		t.Fatalf("SumBytes = %d", b.SumBytes())
	}
}

func TestFromBytesShort(t *testing.T) {
	v := FromBytes([]byte{1, 2, 3})
	if v[0] != 1 || v[2] != 3 || v[3] != 0 || v[15] != 0 {
		t.Fatalf("FromBytes: %v", v)
	}
}

// Property: rotating by n then by 16-n is the identity.
func TestRotInverseProperty(t *testing.T) {
	f := func(raw [16]byte, n uint8) bool {
		v := Vec(raw)
		k := int(n % 16)
		return RotByBytes(RotByBytes(v, k), 16-k) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: And distributes over itself idempotently and AndC(a,a)=0.
func TestBitwiseProperties(t *testing.T) {
	f := func(ra, rb [16]byte) bool {
		a, b := Vec(ra), Vec(rb)
		if And(a, a) != a || Or(a, a) != a {
			return false
		}
		if Xor(a, a) != Zero || AndC(a, a) != Zero {
			return false
		}
		return Xor(Xor(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add32 then Sub32 round-trips lane-wise.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(ra, rb [16]byte) bool {
		a, b := Vec(ra), Vec(rb)
		return Sub32(Add32(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: word access agrees with byte-level big-endian reconstruction.
func TestWordByteConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var v Vec
		rng.Read(v[:])
		for i := 0; i < 4; i++ {
			want := uint32(v[i*4])<<24 | uint32(v[i*4+1])<<16 | uint32(v[i*4+2])<<8 | uint32(v[i*4+3])
			if v.Word(i) != want {
				t.Fatalf("trial %d lane %d: %08x != %08x", trial, i, v.Word(i), want)
			}
		}
	}
}
