package v128

import (
	"strings"
	"testing"
)

func TestAddByteWraparound(t *testing.T) {
	var a, b Vec
	for i := range a {
		a[i] = byte(250 + i)
		b[i] = byte(i * 3)
	}
	r := AddByte(a, b)
	for i := range r {
		if want := byte(250+i) + byte(i*3); r[i] != want {
			t.Fatalf("lane %d: %d, want %d", i, r[i], want)
		}
	}
}

func TestIsZeroAndString(t *testing.T) {
	var v Vec
	if !v.IsZero() {
		t.Fatal("zero vector not reported zero")
	}
	v[5] = 1
	if v.IsZero() {
		t.Fatal("nonzero vector reported zero")
	}
	s := Zero.String()
	if strings.Count(s, "00000000") != 4 {
		t.Fatalf("Zero.String() = %q", s)
	}
}
