package workload

import (
	"fmt"
	"math/rand"
)

// Scenario generation ---------------------------------------------------
//
// A Scenario bundles a dictionary with a corpus that exercises one
// deployment regime of the engine ladder: structured logs where the
// skip-scan filter should fly, digit-dense DLP text where verification
// dominates, short malware signatures that disqualify the filter
// outright, hostile inputs built to saturate the verifier, and a
// regular-expression dictionary for the regex surface. Everything is
// derived from the seed, so the same (seed, corpusBytes) always yields
// byte-identical dictionaries and corpora — the conformance harness
// and the scenario benchmarks depend on that.

// Scenario is one named workload: a dictionary plus a corpus with
// planted matches. The compile knobs are plain fields (this package
// does not import the matcher); the consumer maps them onto its
// compile options.
type Scenario struct {
	// Name identifies the scenario in benchmarks and CI gates.
	Name string
	// Description says what regime the scenario exercises.
	Description string
	// Patterns is the dictionary: literal byte strings, or regular
	// expression sources when Regex is set.
	Patterns [][]byte
	// Regex marks the dictionary entries as regular expressions
	// (bounded repetition only; compiled via CompileRegexSearch).
	Regex bool
	// CaseFold requests case-insensitive compilation.
	CaseFold bool
	// Corpus is the scan input.
	Corpus []byte
	// Planted counts dictionary occurrences written into the corpus
	// (a lower bound on matches: random noise can add more, and
	// overlapping plants can merge).
	Planted int
}

// scenarioSeed derives a per-scenario seed so scenarios stay
// independent: reordering or resizing one never shifts another's
// random stream.
func scenarioSeed(seed int64, name string) int64 {
	h := uint64(seed) * 0x9e3779b97f4a7c15
	for _, b := range []byte(name) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return int64(h)
}

// LogScenario is the log-scanning regime: timestamped structured lines
// whose low-entropy prefixes ("2026-01-02T…  level=… svc=…") dominate
// the byte stream, scanned for a small set of long, rare alert tokens.
// This is the filter's home turf — long minimum pattern length, tiny
// dictionary, matches every few hundred lines.
func LogScenario(seed int64, corpusBytes int) (Scenario, error) {
	if corpusBytes < 256 {
		return Scenario{}, fmt.Errorf("workload: log corpus %d bytes too small", corpusBytes)
	}
	rng := rand.New(rand.NewSource(scenarioSeed(seed, "log-scan")))
	patterns := [][]byte{
		[]byte("PANIC: runtime error"),
		[]byte("segfault at address"),
		[]byte("OOM-killer invoked"),
		[]byte("certificate expired"),
		[]byte("replication lag critical"),
		[]byte("disk quota exceeded"),
	}
	services := []string{"auth", "billing", "ingest", "scheduler", "gateway", "indexer"}
	levels := []string{"DEBUG", "INFO", "INFO", "INFO", "WARN"}
	msgs := []string{
		"request served", "cache hit", "cache miss", "retrying upstream",
		"connection reset by peer", "flushed 128 pages", "lease renewed",
		"heartbeat ok", "rotated segment", "compaction finished",
	}
	var out []byte
	sec := 0
	planted := 0
	for len(out) < corpusBytes {
		line := fmt.Sprintf("2026-01-02T03:%02d:%02dZ %-5s svc=%s req=%08x msg=%q",
			(sec/60)%60, sec%60, levels[rng.Intn(len(levels))],
			services[rng.Intn(len(services))], rng.Uint32(),
			msgs[rng.Intn(len(msgs))])
		// Roughly one alert every 40 lines.
		if rng.Intn(40) == 0 {
			p := patterns[rng.Intn(len(patterns))]
			line = fmt.Sprintf("2026-01-02T03:%02d:%02dZ ERROR svc=%s msg=\"%s\"",
				(sec/60)%60, sec%60, services[rng.Intn(len(services))], p)
			planted++
		}
		out = append(out, line...)
		out = append(out, '\n')
		sec++
	}
	return Scenario{
		Name:        "log-scan",
		Description: "structured log lines, long rare alert tokens (filter-friendly)",
		Patterns:    patterns,
		Corpus:      out[:corpusBytes],
		Planted:     planted,
	}, nil
}

// DLPScenario is the data-loss-prevention regime: digit-dense patterns
// (account and card-shaped strings) scanned over mixed prose that is
// itself full of digits, so candidate windows fire constantly and the
// verifier, not the filter, sets the throughput.
func DLPScenario(seed int64, corpusBytes int) (Scenario, error) {
	if corpusBytes < 256 {
		return Scenario{}, fmt.Errorf("workload: dlp corpus %d bytes too small", corpusBytes)
	}
	rng := rand.New(rand.NewSource(scenarioSeed(seed, "dlp-pii")))
	// Card/account-shaped literals: digit groups with separators.
	patterns := make([][]byte, 24)
	for i := range patterns {
		sep := byte('-')
		if i%3 == 0 {
			sep = ' '
		}
		p := make([]byte, 0, 19)
		for g := 0; g < 4; g++ {
			if g > 0 {
				p = append(p, sep)
			}
			for d := 0; d < 4; d++ {
				p = append(p, byte('0'+rng.Intn(10)))
			}
		}
		patterns[i] = p
	}
	words := []string{
		"invoice", "total", "order", "qty", "ref", "account", "paid",
		"balance", "net30", "tax", "sku", "batch", "amount",
	}
	var out []byte
	planted := 0
	for len(out) < corpusBytes {
		// Digit-dense filler: "invoice 4821 ref 99312 qty 7 ".
		out = append(out, words[rng.Intn(len(words))]...)
		out = append(out, ' ')
		for n := 2 + rng.Intn(5); n > 0; n-- {
			out = append(out, byte('0'+rng.Intn(10)))
		}
		out = append(out, ' ')
		// Plant a full PII literal roughly every 12 tokens.
		if rng.Intn(12) == 0 {
			out = append(out, patterns[rng.Intn(len(patterns))]...)
			out = append(out, ' ')
			planted++
		}
	}
	return Scenario{
		Name:        "dlp-pii",
		Description: "digit-group PII literals over digit-dense text (verifier-bound)",
		Patterns:    patterns,
		Corpus:      out[:corpusBytes],
		Planted:     planted,
	}, nil
}

// MalwareScenario is the short-signature regime: a dense mix of 2-6
// byte signatures. The minimum length sits below the skip-scan
// front-end's eligibility floor, so FilterAuto must decline and the
// dense kernel carries the scan alone.
func MalwareScenario(seed int64, corpusBytes int) (Scenario, error) {
	if corpusBytes < 256 {
		return Scenario{}, fmt.Errorf("workload: malware corpus %d bytes too small", corpusBytes)
	}
	rng := rand.New(rand.NewSource(scenarioSeed(seed, "malware-short")))
	var patterns [][]byte
	seen := map[string]bool{}
	for len(patterns) < 48 {
		p := make([]byte, 2+rng.Intn(5))
		for j := range p {
			p[j] = byte(0x20 + rng.Intn(0x5f)) // printable, dense coverage
		}
		if seen[string(p)] {
			continue
		}
		seen[string(p)] = true
		patterns = append(patterns, p)
	}
	out := make([]byte, corpusBytes)
	for i := range out {
		out[i] = byte(0x20 + rng.Intn(0x5f))
	}
	planted := 0
	for pos := 64; pos < corpusBytes-8; pos += 64 + rng.Intn(64) {
		p := patterns[rng.Intn(len(patterns))]
		copy(out[pos:], p)
		planted++
	}
	return Scenario{
		Name:        "malware-short",
		Description: "short dense signatures below the filter's length floor (kernel-only)",
		Patterns:    patterns,
		Corpus:      out,
		Planted:     planted,
	}, nil
}

// HostileScenario is the adversarial regime: self-overlapping patterns
// over a corpus saturated with near-misses, the overload input the
// paper cites as the reason security products need content-independent
// scan cost. Every position advances deep into the automaton and
// almost every window survives the filter.
func HostileScenario(seed int64, corpusBytes int) (Scenario, error) {
	if corpusBytes < 256 {
		return Scenario{}, fmt.Errorf("workload: hostile corpus %d bytes too small", corpusBytes)
	}
	rng := rand.New(rand.NewSource(scenarioSeed(seed, "hostile-overlap")))
	// Self-overlapping patterns over {a,b}: "ababab…a" shapes whose
	// failure links walk long suffix chains.
	patterns := [][]byte{
		[]byte("ababababab"),
		[]byte("babababa"),
		[]byte("aabaabaab"),
		[]byte("abaababaab"),
		[]byte("bbabbabb"),
	}
	out := make([]byte, corpusBytes)
	for i := range out {
		// Heavily biased two-letter noise: long ab-runs with rare
		// breaks, so near-misses dominate.
		switch rng.Intn(16) {
		case 0:
			out[i] = 'c'
		default:
			out[i] = byte('a' + i%2)
		}
	}
	planted := 0
	for pos := 128; pos < corpusBytes-16; pos += 128 + rng.Intn(128) {
		p := patterns[rng.Intn(len(patterns))]
		copy(out[pos:], p)
		planted++
	}
	return Scenario{
		Name:        "hostile-overlap",
		Description: "self-overlapping patterns over near-miss-saturated input (worst case)",
		Patterns:    patterns,
		Corpus:      out,
		Planted:     planted,
	}, nil
}

// FoldScenario is the alphabet-fold collision regime: a case-folded
// dictionary containing distinct patterns that collide under folding
// (case variants of one another), scanned over mixed-case text. Every
// collision point must report every colliding pattern id — the
// conformance harness checks the engines agree on the duplicates.
func FoldScenario(seed int64, corpusBytes int) (Scenario, error) {
	if corpusBytes < 256 {
		return Scenario{}, fmt.Errorf("workload: fold corpus %d bytes too small", corpusBytes)
	}
	rng := rand.New(rand.NewSource(scenarioSeed(seed, "fold-collide")))
	bases := []string{"gadget", "widget", "sprocket", "flange"}
	var patterns [][]byte
	for _, b := range bases {
		// Three case-variants per base — distinct patterns, identical
		// under folding, so each occurrence reports three ids.
		patterns = append(patterns,
			[]byte(b),
			[]byte(toUpperASCII(b)),
			[]byte(toTitleASCII(b)))
	}
	words := []string{"order", "ship", "stock", "parts", "belt", "gear"}
	var out []byte
	planted := 0
	for len(out) < corpusBytes {
		if rng.Intn(8) == 0 {
			// Plant a random-cased base word.
			b := bases[rng.Intn(len(bases))]
			w := []byte(b)
			for j := range w {
				if rng.Intn(2) == 0 {
					w[j] = w[j] - 'a' + 'A'
				}
			}
			out = append(out, w...)
			planted++
		} else {
			out = append(out, words[rng.Intn(len(words))]...)
		}
		out = append(out, ' ')
	}
	return Scenario{
		Name:        "fold-collide",
		Description: "case-variant pattern collisions under folding (duplicate reporting)",
		Patterns:    patterns,
		CaseFold:    true,
		Corpus:      out[:corpusBytes],
		Planted:     planted,
	}, nil
}

// RegexScenario is the regular-expression regime: a bounded-repetition
// expression dictionary (access-log shapes) compiled through the regex
// search surface, over log-like text. The sharded tier and skip-scan
// filter are literal-only, so this pins the kernel/stt ladder for
// regex dictionaries.
func RegexScenario(seed int64, corpusBytes int) (Scenario, error) {
	if corpusBytes < 256 {
		return Scenario{}, fmt.Errorf("workload: regex corpus %d bytes too small", corpusBytes)
	}
	rng := rand.New(rand.NewSource(scenarioSeed(seed, "regex-logs")))
	patterns := [][]byte{
		[]byte(`err(or)?`),
		[]byte(`[0-9]{3} [0-9]{2,6}`),
		[]byte(`GET /[a-z]{1,8}`),
		[]byte(`time(out|d out)`),
		[]byte(`5[0-9]{2}`),
	}
	paths := []string{"index", "health", "login", "assets", "api", "feed"}
	verbs := []string{"GET", "PUT", "POST", "HEAD"}
	var out []byte
	planted := 0
	for len(out) < corpusBytes {
		status := 200
		switch rng.Intn(10) {
		case 0:
			status = 500 + rng.Intn(4)
			planted++ // matches 5[0-9]{2}
		case 1:
			status = 404
		}
		line := fmt.Sprintf("%s /%s %d %d",
			verbs[rng.Intn(len(verbs))], paths[rng.Intn(len(paths))],
			status, 100+rng.Intn(90000))
		if rng.Intn(20) == 0 {
			line += " upstream timeout error"
			planted++
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return Scenario{
		Name:        "regex-logs",
		Description: "bounded-repetition expression dictionary over access logs (regex surface)",
		Patterns:    patterns,
		Regex:       true,
		Corpus:      out[:corpusBytes],
		Planted:     planted,
	}, nil
}

// Scenarios builds the full suite at the given corpus size. The same
// (seed, corpusBytes) always returns byte-identical scenarios, in a
// fixed order, with unique names.
func Scenarios(seed int64, corpusBytes int) ([]Scenario, error) {
	gens := []func(int64, int) (Scenario, error){
		LogScenario, DLPScenario, MalwareScenario, HostileScenario,
		FoldScenario, RegexScenario,
	}
	out := make([]Scenario, 0, len(gens))
	for _, g := range gens {
		s, err := g(seed, corpusBytes)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func toUpperASCII(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 'a' - 'A'
		}
	}
	return string(b)
}

func toTitleASCII(s string) string {
	b := []byte(s)
	if len(b) > 0 && b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}
