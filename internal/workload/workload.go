// Package workload generates deterministic dictionaries and traffic
// for the experiments. The paper evaluated on a pre-production blade
// with security-style dictionaries; the generators here produce
// synthetic equivalents with exactly controlled parameters (state
// counts, match densities, adversarial structure), which is all the
// experiments depend on — DFA scanning is content-independent by
// construction.
package workload

import (
	"fmt"
	"math/rand"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/dfa"
)

// Dictionary generation -----------------------------------------------

// DictConfig controls synthetic dictionary generation.
type DictConfig struct {
	// TargetStates is the desired Aho-Corasick state count (Figure 3
	// budgets: 1520/1648/1712).
	TargetStates int
	// PatternLen is the pattern length (default 24).
	PatternLen int
	// Seed makes generation deterministic.
	Seed int64
}

// Dictionary builds a pattern set whose case-folded Aho-Corasick
// automaton has close to (and never more than) TargetStates states.
func Dictionary(cfg DictConfig) ([][]byte, error) {
	if cfg.TargetStates < 4 {
		return nil, fmt.Errorf("workload: target states %d too small", cfg.TargetStates)
	}
	if cfg.PatternLen == 0 {
		cfg.PatternLen = 24
	}
	if cfg.PatternLen < 3 || cfg.PatternLen > 256 {
		return nil, fmt.Errorf("workload: pattern length %d out of range", cfg.PatternLen)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	red := alphabet.CaseFold32()
	var pats [][]byte
	states := 1
	for i := 0; states+cfg.PatternLen <= cfg.TargetStates; i++ {
		p := make([]byte, cfg.PatternLen)
		// Distinct two-byte prefix guarantees near-disjoint tries.
		p[0] = byte('A' + i%26)
		p[1] = byte('A' + (i/26)%26)
		for j := 2; j < cfg.PatternLen; j++ {
			p[j] = byte('A' + rng.Intn(26))
		}
		pats = append(pats, p)
		states = dfa.TrieStates(pats, red)
		if states > cfg.TargetStates {
			pats = pats[:len(pats)-1]
			break
		}
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("workload: could not fit any pattern under %d states", cfg.TargetStates)
	}
	return pats, nil
}

// FleetDictionary builds a fleet-scale flat dictionary: n distinct
// uppercase patterns of length 8-24, the compile-latency workload for
// the parallel and incremental compilation benchmarks. Each pattern
// carries a unique base-26 index prefix, so the set is duplicate-free
// at any size without bookkeeping, and the same (n, seed) is always
// byte-identical.
func FleetDictionary(n int, seed int64) ([][]byte, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: fleet dictionary needs at least 1 pattern, got %d", n)
	}
	if n > 26*26*26*26 {
		return nil, fmt.Errorf("workload: fleet dictionary %d exceeds the unique-prefix space", n)
	}
	rng := rand.New(rand.NewSource(seed))
	pats := make([][]byte, n)
	for i := range pats {
		p := make([]byte, 0, 24)
		v := i
		for k := 0; k < 4; k++ {
			p = append(p, byte('A'+v%26))
			v /= 26
		}
		for tail := 4 + rng.Intn(17); tail > 0; tail-- {
			p = append(p, byte('A'+rng.Intn(26)))
		}
		pats[i] = p
	}
	return pats, nil
}

// LongPatternDictionary builds n uppercase patterns of length
// [minLen, maxLen] — the long-pattern signature workload the skip-scan
// front-end is measured on. Benign traffic from Traffic is lowercase,
// so the two alphabets are disjoint under a case-sensitive compile:
// the regime real NIDS dictionaries sit in, where most filter windows
// die on the first byte examined.
func LongPatternDictionary(n, minLen, maxLen int, seed int64) ([][]byte, error) {
	if n < 1 || minLen < 2 || maxLen < minLen {
		return nil, fmt.Errorf("workload: bad long-pattern shape n=%d len=[%d,%d]", n, minLen, maxLen)
	}
	rng := rand.New(rand.NewSource(seed))
	pats := make([][]byte, n)
	for i := range pats {
		p := make([]byte, minLen+rng.Intn(maxLen-minLen+1))
		for j := range p {
			p[j] = byte('A' + rng.Intn(26))
		}
		pats[i] = p
	}
	return pats, nil
}

// SignatureDictionary returns a small NIDS-flavored dictionary of
// realistic-looking signatures for examples and demos.
func SignatureDictionary() [][]byte {
	sigs := []string{
		"CMD.EXE", "/BIN/SH", "SELECT * FROM", "UNION SELECT",
		"ETC/PASSWD", "XP_CMDSHELL", "SCRIPT>ALERT", "WGET HTTP",
		"POWERSHELL -ENC", "EVAL(BASE64", "DOCUMENT.COOKIE",
		"JNDI:LDAP", "PICKLE.LOADS", "RM -RF /",
	}
	out := make([][]byte, len(sigs))
	for i, s := range sigs {
		out[i] = []byte(s)
	}
	return out
}

// Traffic generation ---------------------------------------------------

// TrafficConfig controls synthetic stream generation.
type TrafficConfig struct {
	// Bytes is the stream length.
	Bytes int
	// MatchEvery plants one dictionary pattern roughly every this many
	// bytes (0 = no planted matches). Security traffic is mostly
	// benign, so sparse planting is the realistic regime.
	MatchEvery int
	// Dictionary supplies the patterns to plant.
	Dictionary [][]byte
	// Seed makes generation deterministic.
	Seed int64
}

// Traffic generates a benign-noise stream with planted dictionary
// occurrences, returning the stream and the number planted.
func Traffic(cfg TrafficConfig) ([]byte, int, error) {
	if cfg.Bytes < 0 {
		return nil, 0, fmt.Errorf("workload: negative traffic size")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]byte, cfg.Bytes)
	letters := []byte("abcdefghijklmnopqrstuvwxyz 0123456789.,;:!?")
	for i := range out {
		out[i] = letters[rng.Intn(len(letters))]
	}
	planted := 0
	if cfg.MatchEvery > 0 && len(cfg.Dictionary) > 0 {
		for pos := cfg.MatchEvery; pos < cfg.Bytes; pos += cfg.MatchEvery {
			p := cfg.Dictionary[rng.Intn(len(cfg.Dictionary))]
			if pos+len(p) > cfg.Bytes {
				break
			}
			copy(out[pos:], p)
			planted++
		}
	}
	return out, planted, nil
}

// AdversarialBMH builds an input that degrades Boyer-Moore-family
// matchers to their quadratic worst case against the given pattern:
// long runs that almost match, defeating the skip heuristics. This is
// the "overload attack based on malicious input" the paper cites as
// the reason security products prefer DFAs.
func AdversarialBMH(pattern []byte, n int) []byte {
	if len(pattern) == 0 || n <= 0 {
		return nil
	}
	// Repeat the pattern's first byte everywhere, then sprinkle the
	// pattern's tail minus one byte so alignments shift by one.
	out := make([]byte, n)
	for i := range out {
		out[i] = pattern[len(pattern)-1]
	}
	return out
}

// InterleavedStreams cuts a block of traffic into 16 equal streams
// for tile-style scanning.
func InterleavedStreams(data []byte) ([][]byte, error) {
	if len(data)%16 != 0 {
		return nil, fmt.Errorf("workload: length %d not divisible by 16", len(data))
	}
	per := len(data) / 16
	out := make([][]byte, 16)
	for i := range out {
		out[i] = data[i*per : (i+1)*per]
	}
	return out, nil
}
