package workload

import (
	"bytes"
	"testing"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/dfa"
)

func TestDictionaryHitsTarget(t *testing.T) {
	red := alphabet.CaseFold32()
	for _, target := range []int{100, 800, 1520, 1712} {
		pats, err := Dictionary(DictConfig{TargetStates: target, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		states := dfa.TrieStates(pats, red)
		if states > target {
			t.Fatalf("target %d: got %d states (over)", target, states)
		}
		if states < target-30 {
			t.Fatalf("target %d: got only %d states", target, states)
		}
	}
}

func TestDictionaryDeterministic(t *testing.T) {
	a, _ := Dictionary(DictConfig{TargetStates: 500, Seed: 9})
	b, _ := Dictionary(DictConfig{TargetStates: 500, Seed: 9})
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatal("nondeterministic content")
		}
	}
	c, _ := Dictionary(DictConfig{TargetStates: 500, Seed: 10})
	same := len(a) == len(c)
	if same {
		for i := range a {
			if !bytes.Equal(a[i], c[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed has no effect")
	}
}

func TestDictionaryErrors(t *testing.T) {
	if _, err := Dictionary(DictConfig{TargetStates: 2}); err == nil {
		t.Fatal("tiny target accepted")
	}
	if _, err := Dictionary(DictConfig{TargetStates: 100, PatternLen: 1}); err == nil {
		t.Fatal("tiny patterns accepted")
	}
}

func TestDictionaryBuildsValidDFA(t *testing.T) {
	pats, err := Dictionary(DictConfig{TargetStates: 1520, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d, err := dfa.FromPatterns(pats, alphabet.CaseFold32())
	if err != nil {
		t.Fatal(err)
	}
	if d.NumStates() > 1520 {
		t.Fatalf("DFA states %d exceed tile budget", d.NumStates())
	}
}

func TestTrafficPlantsMatches(t *testing.T) {
	dict := SignatureDictionary()
	data, planted, err := Traffic(TrafficConfig{
		Bytes: 20000, MatchEvery: 1000, Dictionary: dict, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 20000 {
		t.Fatalf("traffic size %d", len(data))
	}
	if planted < 15 {
		t.Fatalf("planted only %d", planted)
	}
	// The planted signatures are findable (case-folded scan).
	red := alphabet.CaseFold32()
	d, err := dfa.FromPatterns(dict, red)
	if err != nil {
		t.Fatal(err)
	}
	found := d.CountFinalEntries(red.Reduce(data))
	if found < planted {
		t.Fatalf("found %d < planted %d", found, planted)
	}
}

func TestTrafficNoPlanting(t *testing.T) {
	data, planted, err := Traffic(TrafficConfig{Bytes: 1000, Seed: 5})
	if err != nil || planted != 0 || len(data) != 1000 {
		t.Fatalf("plain traffic: %d bytes, %d planted, %v", len(data), planted, err)
	}
	if _, _, err := Traffic(TrafficConfig{Bytes: -1}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestAdversarialBMH(t *testing.T) {
	pattern := []byte("aaaaaaab")
	adv := AdversarialBMH([]byte("baaaaaaa"), 1000)
	if len(adv) != 1000 {
		t.Fatalf("length %d", len(adv))
	}
	_ = pattern
	if AdversarialBMH(nil, 10) != nil {
		t.Fatal("empty pattern should yield nil")
	}
}

func TestInterleavedStreams(t *testing.T) {
	data := make([]byte, 160)
	streams, err := InterleavedStreams(data)
	if err != nil || len(streams) != 16 || len(streams[0]) != 10 {
		t.Fatalf("streams: %d x %d (%v)", len(streams), len(streams[0]), err)
	}
	if _, err := InterleavedStreams(make([]byte, 17)); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestLongPatternDictionary(t *testing.T) {
	pats, err := LongPatternDictionary(48, 16, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 48 {
		t.Fatalf("patterns = %d", len(pats))
	}
	for i, p := range pats {
		if len(p) < 16 || len(p) > 40 {
			t.Fatalf("pattern %d length %d out of [16,40]", i, len(p))
		}
		for _, c := range p {
			if c < 'A' || c > 'Z' {
				t.Fatalf("pattern %d has non-uppercase byte %q", i, c)
			}
		}
	}
	again, err := LongPatternDictionary(48, 16, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pats {
		if string(pats[i]) != string(again[i]) {
			t.Fatal("generation is not deterministic")
		}
	}
	for _, bad := range [][4]int{{0, 16, 40, 1}, {4, 1, 40, 1}, {4, 16, 8, 1}} {
		if _, err := LongPatternDictionary(bad[0], bad[1], bad[2], int64(bad[3])); err == nil {
			t.Fatalf("bad shape %v accepted", bad)
		}
	}
}

func TestFleetDictionary(t *testing.T) {
	pats, err := FleetDictionary(5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 5000 {
		t.Fatalf("patterns = %d", len(pats))
	}
	seen := make(map[string]bool, len(pats))
	for i, p := range pats {
		if len(p) < 8 || len(p) > 24 {
			t.Fatalf("pattern %d length %d out of [8,24]", i, len(p))
		}
		for _, c := range p {
			if c < 'A' || c > 'Z' {
				t.Fatalf("pattern %d has non-uppercase byte %q", i, c)
			}
		}
		if seen[string(p)] {
			t.Fatalf("pattern %d duplicates an earlier entry: %q", i, p)
		}
		seen[string(p)] = true
	}
	again, err := FleetDictionary(5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pats {
		if string(pats[i]) != string(again[i]) {
			t.Fatal("generation is not deterministic")
		}
	}
	if _, err := FleetDictionary(0, 1); err == nil {
		t.Fatal("zero-size fleet accepted")
	}
	if _, err := FleetDictionary(26*26*26*26+1, 1); err == nil {
		t.Fatal("over-prefix-space fleet accepted")
	}
}
